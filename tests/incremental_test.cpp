// Differential testing of the incremental solving layer (ISSUE tentpole):
//
//   1. Equivalence: across ~100 seeded multi-interval scenarios with
//      low-churn demand evolution, solve(problem, {.incremental = true}) must
//      pass te::check_solution and match a cold solve's per-QoS-class
//      satisfied demand within 1e-9 relative — including runs where
//      fault-plan link failures strike between intervals. On failure the
//      harness shrinks the scenario like property_test.cpp and reports the
//      smallest still-failing config with its exact seed.
//
//   2. Invalidation: replaying PR 1's fault machinery (FaultPlan link
//      failures via the FaultInjector, capacity derates, shard crashes)
//      must drop the memo exactly when the topology moved — a stage-2
//      cache hit right after a topology event is a test failure, and a
//      shard-only fault (no topology change) must NOT cost the cache.
//
//   3. Parity: the chaos loop and the period simulation produce the same
//      results with incremental solving on and off (bit-identical chaos
//      fingerprint; per-period carriage within 1e-9).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "megate/ctrl/kvstore.h"
#include "megate/ctrl/transport.h"
#include "megate/fault/chaos.h"
#include "megate/fault/fault_plan.h"
#include "megate/fault/injector.h"
#include "megate/sim/period_sim.h"
#include "megate/te/checker.h"
#include "megate/te/megate_solver.h"
#include "megate/tm/delta.h"
#include "megate/util/rng.h"
#include "test_helpers.h"

namespace megate {
namespace {

/// Evolves a traffic matrix by one interval: each flow keeps its identity
/// and QoS class; about `churn` of them rescale their demand. Seeded per
/// flow, so the evolution is independent of container iteration order.
tm::TrafficMatrix evolve_traffic(const tm::TrafficMatrix& prev, double churn,
                                 std::uint64_t seed) {
  tm::TrafficMatrix out;
  for (const auto& [pair, flows] : prev.pairs()) {
    for (std::size_t i = 0; i < flows.size(); ++i) {
      tm::EndpointDemand d = flows[i];
      util::Rng rng(seed ^ (d.src * 0x9E3779B97F4A7C15ULL) ^
                    (d.dst * 0xBF58476D1CE4E5B9ULL) ^ i);
      if (rng.uniform() < churn) {
        d.demand_gbps *= 0.5 + rng.uniform();  // 0.5x .. 1.5x
      }
      out.add(d);
    }
  }
  return out;
}

/// One randomized multi-interval scenario, fully determined by a seed.
struct CaseConfig {
  std::uint64_t seed = 0;
  std::uint32_t sites = 6;
  std::uint32_t links = 9;
  std::uint32_t eps_per_site = 2;
  double load = 0.2;
  std::size_t intervals = 5;
  double churn = 0.1;
  /// Fail one duplex link from this interval on (~none when >= intervals).
  std::size_t fault_interval = ~std::size_t{0};

  std::string describe() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "Scenario{seed=%llu, sites=%u, links=%u, eps=%u, "
                  "load=%.3f, intervals=%zu, churn=%.2f, fault_at=%zd}",
                  static_cast<unsigned long long>(seed), sites, links,
                  eps_per_site, load, intervals, churn,
                  fault_interval == ~std::size_t{0}
                      ? static_cast<std::ptrdiff_t>(-1)
                      : static_cast<std::ptrdiff_t>(fault_interval));
    return buf;
  }
};

CaseConfig random_case(std::uint64_t seed) {
  util::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 17);
  CaseConfig c;
  c.seed = seed;
  c.sites = static_cast<std::uint32_t>(rng.uniform_int(4, 8));
  c.links =
      c.sites + static_cast<std::uint32_t>(rng.uniform_int(0, c.sites));
  c.eps_per_site = static_cast<std::uint32_t>(rng.uniform_int(2, 5));
  c.load = 0.1 + 0.3 * rng.uniform();   // 0.1 .. 0.4
  c.churn = 0.05 + 0.2 * rng.uniform();  // low-churn regime
  c.intervals = 5;
  // A third of the scenarios take a mid-run link failure, exercising the
  // invalidate-then-reprime path inside the differential comparison.
  if (rng.uniform() < 0.33) {
    c.fault_interval = 2;
  }
  return c;
}

bool within_rel(double a, double b, double rel) {
  return std::abs(a - b) <= rel * std::max(1.0, std::max(std::abs(a),
                                                         std::abs(b)));
}

/// Solve context for the incremental path of the unified solve() entry.
te::SolveContext inc_ctx(const te::TeProblem* prev = nullptr) {
  te::SolveContext ctx;
  ctx.incremental = true;
  ctx.prev = prev;
  return ctx;
}

/// Runs one scenario: interval 0 primes the incremental solver cold; each
/// later interval evolves demand, then solves both incrementally (one
/// retained solver) and cold (fresh state), comparing validity and
/// per-QoS satisfied demand. Returns the first violation, if any.
std::optional<std::string> run_case(const CaseConfig& c) {
  auto s = testing::make_scenario(c.sites, c.links, c.eps_per_site, c.load,
                                  c.seed);
  te::MegaTeSolver inc_solver;
  te::MegaTeSolver cold_solver;
  tm::TrafficMatrix current = s->traffic;
  const topo::TunnelSet pristine = s->tunnels;

  for (std::size_t interval = 0; interval < c.intervals; ++interval) {
    if (interval > 0) {
      current = evolve_traffic(current, c.churn,
                               c.seed * 1000003ULL + interval);
    }
    if (interval == c.fault_interval) {
      // Fail the first duplex pair and repair tunnels, as the fault
      // harness does — the incremental solver must notice by itself.
      if (s->graph.num_links() >= 2) {
        s->graph.set_link_state(0, false);
        s->graph.set_link_state(1, false);
        s->tunnels = pristine;
        topo::repair_tunnels(s->graph, s->tunnels);
      }
    }

    te::TeProblem problem = s->problem();
    problem.traffic = &current;

    const te::SolveReport inc_report = inc_solver.solve(problem, inc_ctx());
    const te::TeSolution& inc = inc_report.solution;
    const te::TeSolution cold = cold_solver.solve(problem, {}).solution;

    te::CheckOptions copt;
    copt.capacity_tolerance = 1e-6;
    copt.require_flow_assignment = true;
    const te::CheckResult check = te::check_solution(problem, inc, copt);
    if (!check.ok) {
      return c.describe() + ": interval " + std::to_string(interval) +
             " incremental solution violates constraints: " +
             check.violations.front();
    }

    const auto inc_q = te::satisfied_by_class(problem, inc);
    const auto cold_q = te::satisfied_by_class(problem, cold);
    for (std::size_t q = 0; q < 3; ++q) {
      if (!within_rel(inc_q[q], cold_q[q], 1e-9)) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      ": interval %zu class %zu satisfied diverges: "
                      "incremental %.12f vs cold %.12f Gbps",
                      interval, q + 1, inc_q[q], cold_q[q]);
        return c.describe() + buf;
      }
    }
    if (!within_rel(inc.satisfied_gbps, cold.satisfied_gbps, 1e-9)) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    ": interval %zu total satisfied diverges: %.12f vs "
                    "%.12f Gbps",
                    interval, inc.satisfied_gbps, cold.satisfied_gbps);
      return c.describe() + buf;
    }

    // The fault interval must have dropped every cached stage-2 result:
    // a memo hit against the failed topology would be a stale replay.
    const te::IncrementalStats& stats = inc_report.incremental;
    if (interval == c.fault_interval && stats.ssp_cache_hits > 0) {
      return c.describe() + ": stale stage-2 memo hit after a link failure";
    }
    if (interval == c.fault_interval && interval > 0 &&
        stats.cache_invalidations == 0) {
      return c.describe() + ": link failure did not invalidate the cache";
    }
  }
  return std::nullopt;
}

/// Shrinks a failing case: fewer endpoints first, then fewer sites/links,
/// then fewer intervals. Returns the smallest still-failing config.
std::pair<CaseConfig, std::string> shrink(CaseConfig c, std::string error) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    std::vector<CaseConfig> candidates;
    if (c.eps_per_site > 1) {
      CaseConfig d = c;
      d.eps_per_site -= 1;
      candidates.push_back(d);
    }
    if (c.sites > 3) {
      CaseConfig d = c;
      d.sites -= 1;
      d.links = std::min(d.links, d.sites * 2);
      candidates.push_back(d);
    }
    if (c.links > c.sites) {
      CaseConfig d = c;
      d.links -= 1;
      candidates.push_back(d);
    }
    if (c.intervals > 2) {
      CaseConfig d = c;
      d.intervals -= 1;
      if (d.fault_interval >= d.intervals) {
        d.fault_interval = ~std::size_t{0};
      }
      candidates.push_back(d);
    }
    for (const CaseConfig& d : candidates) {
      if (auto err = run_case(d)) {
        c = d;
        error = *err;
        shrunk = true;
        break;
      }
    }
  }
  return {c, error};
}

TEST(IncrementalDifferential, MatchesColdSolveAcrossRandomScenarios) {
  constexpr std::uint64_t kSeeds = 100;
  std::size_t failures = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const CaseConfig c = random_case(seed);
    auto error = run_case(c);
    if (!error) continue;
    const auto [smallest, message] = shrink(c, *error);
    ADD_FAILURE() << "seed " << seed << " failed; shrunk to "
                  << smallest.describe() << "\n  " << message;
    if (++failures >= 3) break;  // enough to debug; don't spam
  }
}

// ---------------------------------------------------------------------------
// Cache behaviour on a fixed scenario.
// ---------------------------------------------------------------------------

class IncrementalCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s_ = testing::make_scenario(8, 12, 3, 0.15, 11);
  }
  std::unique_ptr<testing::Scenario> s_;
  te::MegaTeSolver solver_;
};

TEST_F(IncrementalCacheTest, RepeatSolveHitsMemoAndWarmStart) {
  const te::TeProblem problem = s_->problem();
  const te::SolveReport first = solver_.solve(problem, inc_ctx());
  EXPECT_FALSE(first.incremental.used_incremental);
  EXPECT_EQ(first.incremental.ssp_cache_hits, 0u);

  const te::SolveReport second = solver_.solve(problem, inc_ctx());
  const te::IncrementalStats& stats = second.incremental;
  EXPECT_TRUE(stats.used_incremental);
  EXPECT_GT(stats.ssp_cache_hits, 0u);
  EXPECT_EQ(stats.ssp_cache_misses, 0u);
  EXPECT_EQ(stats.cache_invalidations, 0u);
  EXPECT_EQ(stats.dirty_pairs, 0u);
  EXPECT_GT(stats.clean_pairs, 0u);
  // Unchanged rhs -> every stage-1 round replays its basis with 0 pivots.
  EXPECT_GT(stats.warm_start_rounds, 0u);
  EXPECT_EQ(stats.lp_iterations, 0u);
  // Identical inputs -> bit-identical outputs.
  EXPECT_EQ(first.solution.satisfied_gbps, second.solution.satisfied_gbps);
  for (const auto& [pair, alloc] : first.solution.pairs) {
    const auto it = second.solution.pairs.find(pair);
    ASSERT_NE(it, second.solution.pairs.end());
    EXPECT_EQ(alloc.flow_tunnel, it->second.flow_tunnel);
    EXPECT_EQ(alloc.tunnel_alloc, it->second.tunnel_alloc);
  }
}

TEST_F(IncrementalCacheTest, LinkFailureInvalidatesEverything) {
  const te::TeProblem problem = s_->problem();
  (void)solver_.solve(problem, inc_ctx());
  const te::SolveReport warm = solver_.solve(problem, inc_ctx());
  ASSERT_GT(warm.incremental.ssp_cache_hits, 0u);

  // Duplex link down + tunnel repair, as the fault harness does.
  s_->graph.set_link_state(0, false);
  s_->graph.set_link_state(1, false);
  topo::repair_tunnels(s_->graph, s_->tunnels);

  const te::SolveReport after = solver_.solve(s_->problem(), inc_ctx());
  const te::IncrementalStats& stats = after.incremental;
  EXPECT_EQ(stats.cache_invalidations, 1u);
  EXPECT_FALSE(stats.used_incremental);
  EXPECT_EQ(stats.ssp_cache_hits, 0u) << "stale memo hit after link failure";

  // The degraded topology is stable now: the reprimed cache serves hits.
  const te::SolveReport reprimed = solver_.solve(s_->problem(), inc_ctx());
  EXPECT_TRUE(reprimed.incremental.used_incremental);
  EXPECT_GT(reprimed.incremental.ssp_cache_hits, 0u);

  // Recovery is a topology change too — the degraded-state cache must go.
  s_->graph.set_link_state(0, true);
  s_->graph.set_link_state(1, true);
  topo::repair_tunnels(s_->graph, s_->tunnels);
  const te::SolveReport recovered = solver_.solve(s_->problem(), inc_ctx());
  EXPECT_EQ(recovered.incremental.ssp_cache_hits, 0u)
      << "stale memo hit after link recovery";
}

TEST_F(IncrementalCacheTest, CapacityDerateInvalidates) {
  const te::TeProblem problem = s_->problem();
  (void)solver_.solve(problem, inc_ctx());
  const te::SolveReport warm = solver_.solve(problem, inc_ctx());
  ASSERT_GT(warm.incremental.ssp_cache_hits, 0u);

  s_->graph.link(0).capacity_gbps *= 0.5;
  const te::SolveReport after = solver_.solve(s_->problem(), inc_ctx());
  const te::IncrementalStats& stats = after.incremental;
  EXPECT_EQ(stats.cache_invalidations, 1u);
  EXPECT_EQ(stats.ssp_cache_hits, 0u)
      << "stale memo hit after capacity derate";
}

TEST_F(IncrementalCacheTest, DemandChangeIsNotAnInvalidation) {
  te::TeProblem problem = s_->problem();
  (void)solver_.solve(problem, inc_ctx());

  const tm::TrafficMatrix evolved =
      evolve_traffic(s_->traffic, 0.2, 99);
  problem.traffic = &evolved;
  const te::SolveReport report = solver_.solve(problem, inc_ctx());
  const te::IncrementalStats& stats = report.incremental;
  EXPECT_TRUE(stats.used_incremental);
  EXPECT_EQ(stats.cache_invalidations, 0u);
  EXPECT_GT(stats.dirty_pairs, 0u);
  EXPECT_GT(stats.clean_pairs, 0u);
}

TEST_F(IncrementalCacheTest, PrevProblemSeedsTheDemandDelta) {
  // The previous interval was solved elsewhere: passing its problem still
  // enables the delta classification (not the memo — nothing was cached).
  const tm::TrafficMatrix evolved = evolve_traffic(s_->traffic, 0.2, 7);
  te::TeProblem prev = s_->problem();
  te::TeProblem next = s_->problem();
  next.traffic = &evolved;

  const te::SolveReport report = solver_.solve(next, inc_ctx(&prev));
  const te::IncrementalStats& stats = report.incremental;
  EXPECT_FALSE(stats.used_incremental);
  EXPECT_GT(stats.clean_pairs, 0u);
  EXPECT_GT(stats.dirty_pairs + stats.clean_pairs, 0u);
}

TEST_F(IncrementalCacheTest, ResetDropsRetainedState) {
  const te::TeProblem problem = s_->problem();
  (void)solver_.solve(problem, inc_ctx());
  solver_.reset_incremental();
  const te::SolveReport report = solver_.solve(problem, inc_ctx());
  EXPECT_FALSE(report.incremental.used_incremental);
  EXPECT_EQ(report.incremental.ssp_cache_hits, 0u);
}

// ---------------------------------------------------------------------------
// Fault-plan replay (the PR 1 machinery) against the cache.
// ---------------------------------------------------------------------------

TEST(IncrementalFaultReplay, PlannedLinkFailuresInvalidateOnEveryChange) {
  auto s = testing::make_scenario(8, 12, 2, 0.15, 21);
  const topo::TunnelSet pristine = s->tunnels;

  fault::FaultPlanOptions popt;
  popt.seed = 5;
  popt.horizon_s = 300.0;
  popt.quiet_tail_s = 60.0;
  popt.shard_crashes = 0;
  popt.link_failures = 2;
  popt.pull_drop_windows = 0;
  popt.stale_windows = 0;
  const fault::FaultPlan plan =
      fault::FaultPlan::generate(popt, 0, s->graph.num_links() / 2);
  ASSERT_FALSE(plan.empty());

  fault::FaultInjector::Bindings bind;
  bind.graph = &s->graph;
  fault::FaultInjector injector(plan, bind);

  // Sample the timeline right after every event boundary.
  std::vector<double> times;
  for (const fault::FaultEvent& e : plan.events()) {
    times.push_back(e.start_s + 0.5);
    times.push_back(e.end_s() + 0.5);
  }
  std::sort(times.begin(), times.end());

  te::MegaTeSolver solver;
  (void)solver.solve(s->problem(), inc_ctx());  // prime at t=0
  for (double t : times) {
    injector.advance_to(t);
    const bool changed = injector.take_topology_changed();
    if (changed) {
      s->tunnels = pristine;
      topo::repair_tunnels(s->graph, s->tunnels);
    }
    const te::SolveReport report = solver.solve(s->problem(), inc_ctx());
    const te::IncrementalStats& stats = report.incremental;
    if (changed) {
      EXPECT_EQ(stats.ssp_cache_hits, 0u)
          << "stale memo hit after a topology event at t=" << t;
      EXPECT_GE(stats.cache_invalidations, 1u)
          << "topology event at t=" << t << " did not invalidate";
    } else {
      EXPECT_TRUE(stats.used_incremental);
      EXPECT_GT(stats.ssp_cache_hits, 0u);
    }
  }
}

TEST(IncrementalFaultReplay, ShardCrashAndRecoveryKeepTheCache) {
  auto s = testing::make_scenario(8, 12, 2, 0.15, 22);

  fault::FaultPlanOptions popt;
  popt.seed = 6;
  popt.horizon_s = 300.0;
  popt.quiet_tail_s = 60.0;
  popt.shard_crashes = 2;
  popt.link_failures = 0;
  popt.pull_drop_windows = 0;
  popt.stale_windows = 0;
  const fault::FaultPlan plan = fault::FaultPlan::generate(popt, 4, 0);
  ASSERT_FALSE(plan.empty());

  ctrl::KvStore kv(4);
  ctrl::InProcessTransport db(&kv);
  fault::FaultInjector::Bindings bind;
  bind.store = &db;
  bind.graph = &s->graph;
  fault::FaultInjector injector(plan, bind);

  te::MegaTeSolver solver;
  (void)solver.solve(s->problem(), inc_ctx());
  for (const fault::FaultEvent& e : plan.events()) {
    injector.advance_to(e.start_s + 0.5);  // shard down
    EXPECT_FALSE(injector.take_topology_changed());
    const te::SolveReport down = solver.solve(s->problem(), inc_ctx());
    EXPECT_GT(down.incremental.ssp_cache_hits, 0u)
        << "control-plane fault must not cost the solver cache";
    injector.advance_to(e.end_s() + 0.5);  // shard recovered
    const te::SolveReport up = solver.solve(s->problem(), inc_ctx());
    EXPECT_EQ(up.incremental.cache_invalidations, 0u);
    EXPECT_GT(up.incremental.ssp_cache_hits, 0u);
  }
}

// ---------------------------------------------------------------------------
// End-to-end parity: chaos loop and period simulation.
// ---------------------------------------------------------------------------

TEST(IncrementalParity, ChaosFingerprintIdenticalWithIncrementalSolving) {
  // Mirrors fault_test.cpp's small_chaos_options(): a config known to
  // converge, with shard crashes AND link failures in the plan.
  fault::ChaosOptions opt;
  opt.sites = 8;
  opt.duplex_links = 12;
  opt.endpoints_per_site = 2;
  opt.intervals = 8;
  opt.interval_s = 15.0;
  opt.poll_interval_s = 4.0;
  opt.plan.seed = 21;
  opt.plan.horizon_s = 0.0;  // auto-size to intervals * interval_s
  opt.plan.quiet_tail_s = 45.0;
  opt.plan.shard_crashes = 2;
  opt.plan.link_failures = 1;
  opt.plan.pull_drop_windows = 1;
  opt.plan.stale_windows = 1;
  const fault::ChaosReport cold = fault::run_chaos(opt);
  opt.incremental_solve = true;
  const fault::ChaosReport inc = fault::run_chaos(opt);

  EXPECT_TRUE(cold.ok()) << (cold.violations.empty()
                                 ? "did not converge"
                                 : cold.violations.front());
  EXPECT_TRUE(inc.ok()) << (inc.violations.empty()
                                ? "did not converge"
                                : inc.violations.front());
  // Same faults, same published routes, same availability — bit-identical.
  EXPECT_EQ(cold.fingerprint, inc.fingerprint);
  EXPECT_GT(inc.counters.incremental_solves, 0u);
  EXPECT_GT(inc.counters.incremental_cache_hits, 0u);
  // The plan's link failures must have forced invalidations.
  EXPECT_GE(inc.counters.incremental_invalidations, 1u);
  EXPECT_EQ(cold.counters.incremental_solves, 0u);
}

TEST(IncrementalParity, PeriodSimulationOutcomesMatch) {
  auto s = testing::make_scenario(8, 12, 3, 0.2, 31);
  sim::PeriodSimOptions opt;
  opt.periods = 6;
  opt.seed = 3;
  opt.link_faults.push_back({.period = 2, .count = 1,
                             .duration_periods = 2, .seed = 9});

  const auto cold = sim::run_period_simulation(
      s->graph, s->tunnels, s->traffic, sim::DemandKnowledge::kStale, opt);
  opt.incremental = true;
  const auto inc = sim::run_period_simulation(
      s->graph, s->tunnels, s->traffic, sim::DemandKnowledge::kStale, opt);

  ASSERT_EQ(cold.size(), inc.size());
  for (std::size_t p = 0; p < cold.size(); ++p) {
    EXPECT_DOUBLE_EQ(cold[p].actual_total_gbps, inc[p].actual_total_gbps);
    EXPECT_TRUE(within_rel(cold[p].carried_gbps, inc[p].carried_gbps, 1e-9))
        << "period " << p << ": " << cold[p].carried_gbps << " vs "
        << inc[p].carried_gbps;
  }
  // The fault at period 2 and the recovery at period 4 both invalidate.
  std::size_t invalidations = 0;
  for (const auto& out : inc) {
    invalidations += out.incremental.cache_invalidations;
  }
  EXPECT_GE(invalidations, 2u);
}

}  // namespace
}  // namespace megate
