// Tests for megate::dataplane — byte-exact codecs (Ethernet/IPv4/UDP/
// VXLAN/SR), eBPF map semantics, the §5.1 host stack (instance
// identification, flow collection, fragmentation) and the §5.2 router.

#include <gtest/gtest.h>

#include "megate/dataplane/ebpf.h"
#include "megate/dataplane/host_stack.h"
#include "megate/dataplane/packet.h"
#include "megate/dataplane/router.h"
#include "megate/dataplane/sr_header.h"
#include "megate/dataplane/vxlan.h"

namespace megate::dataplane {
namespace {

Buffer make_inner_frame(const FiveTuple& t, std::size_t payload_len = 64,
                        std::uint16_t ipid = 1, bool more_frags = false,
                        std::uint16_t frag_off = 0) {
  Buffer b;
  EthernetHeader eth;
  eth.serialize(b);
  Ipv4Header ip;
  ip.protocol = t.proto;
  ip.src_ip = t.src_ip;
  ip.dst_ip = t.dst_ip;
  ip.identification = ipid;
  ip.more_fragments = more_frags;
  ip.fragment_offset_8b = frag_off;
  const bool has_l4 = frag_off == 0;
  ip.total_length = static_cast<std::uint16_t>(
      kIpv4HeaderSize + (has_l4 ? kUdpHeaderSize : 0) + payload_len);
  ip.serialize(b);
  if (has_l4) {
    UdpHeader udp;
    udp.src_port = t.src_port;
    udp.dst_port = t.dst_port;
    udp.length = static_cast<std::uint16_t>(kUdpHeaderSize + payload_len);
    udp.serialize(b);
  }
  b.insert(b.end(), payload_len, 0xAB);
  return b;
}

FiveTuple tuple(std::uint16_t sport = 5555) {
  FiveTuple t;
  t.src_ip = 0x0A000002;
  t.dst_ip = 0x0A000003;
  t.proto = kProtoUdp;
  t.src_port = sport;
  t.dst_port = 80;
  return t;
}

// --- codecs ------------------------------------------------------------

TEST(Codec, EthernetRoundTrip) {
  EthernetHeader h;
  h.dst_mac = {1, 2, 3, 4, 5, 6};
  h.src_mac = {7, 8, 9, 10, 11, 12};
  h.ether_type = kEtherTypeIpv4;
  Buffer b;
  h.serialize(b);
  ASSERT_EQ(b.size(), kEthernetHeaderSize);
  auto p = EthernetHeader::parse(b);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->dst_mac, h.dst_mac);
  EXPECT_EQ(p->src_mac, h.src_mac);
  EXPECT_EQ(p->ether_type, h.ether_type);
}

TEST(Codec, EthernetTruncated) {
  Buffer b(kEthernetHeaderSize - 1, 0);
  EXPECT_FALSE(EthernetHeader::parse(b).has_value());
}

TEST(Codec, Ipv4RoundTripWithChecksum) {
  Ipv4Header h;
  h.dscp = 10;
  h.total_length = 120;
  h.identification = 0xBEEF;
  h.more_fragments = true;
  h.fragment_offset_8b = 185;
  h.ttl = 17;
  h.protocol = kProtoTcp;
  h.src_ip = 0xC0A80101;
  h.dst_ip = 0x08080808;
  Buffer b;
  h.serialize(b);
  b.resize(200);  // pretend the payload follows
  auto p = Ipv4Header::parse(b);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->dscp, h.dscp);
  EXPECT_EQ(p->identification, h.identification);
  EXPECT_TRUE(p->more_fragments);
  EXPECT_EQ(p->fragment_offset_8b, h.fragment_offset_8b);
  EXPECT_EQ(p->src_ip, h.src_ip);
  EXPECT_EQ(p->dst_ip, h.dst_ip);
}

TEST(Codec, Ipv4RejectsCorruptedChecksum) {
  Ipv4Header h;
  h.total_length = 40;
  Buffer b;
  h.serialize(b);
  b.resize(40);
  b[12] ^= 0xFF;  // corrupt src ip
  EXPECT_FALSE(Ipv4Header::parse(b).has_value());
}

TEST(Codec, Ipv4RejectsWrongVersionAndLength) {
  Ipv4Header h;
  h.total_length = 20;
  Buffer b;
  h.serialize(b);
  Buffer bad = b;
  bad[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::parse(bad).has_value());
  Buffer trunc(b.begin(), b.begin() + 10);
  EXPECT_FALSE(Ipv4Header::parse(trunc).has_value());
}

TEST(Codec, Ipv4FragmentPredicates) {
  Ipv4Header h;
  EXPECT_FALSE(h.is_fragment());
  h.more_fragments = true;
  EXPECT_TRUE(h.first_fragment());
  h.fragment_offset_8b = 10;
  EXPECT_TRUE(h.is_fragment());
  EXPECT_FALSE(h.first_fragment());
}

TEST(Codec, ChecksumKnownVector) {
  // RFC 1071 example bytes.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  const std::uint16_t sum = internet_checksum(data);
  // Verify the defining property instead of a magic constant: appending
  // the checksum makes the total sum 0xFFFF (i.e. checksum of all = 0).
  Buffer with_sum(data, data + sizeof(data));
  with_sum.push_back(static_cast<std::uint8_t>(sum >> 8));
  with_sum.push_back(static_cast<std::uint8_t>(sum));
  EXPECT_EQ(internet_checksum(with_sum), 0);
}

TEST(Codec, UdpRoundTrip) {
  UdpHeader h;
  h.src_port = 1234;
  h.dst_port = 4789;
  h.length = 100;
  Buffer b;
  h.serialize(b);
  auto p = UdpHeader::parse(b);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->src_port, 1234);
  EXPECT_EQ(p->dst_port, 4789);
  EXPECT_EQ(p->length, 100);
}

TEST(Codec, UdpRejectsShortLength) {
  UdpHeader h;
  h.length = 4;  // < header size
  Buffer b;
  h.serialize(b);
  EXPECT_FALSE(UdpHeader::parse(b).has_value());
}

TEST(Codec, VxlanRoundTripWithSrFlag) {
  for (bool sr : {false, true}) {
    VxlanHeader h;
    h.vni = 0xABCDEF;
    h.megate_sr = sr;
    Buffer b;
    h.serialize(b);
    ASSERT_EQ(b.size(), kVxlanHeaderSize);
    auto p = VxlanHeader::parse(b);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->vni, 0xABCDEFu);
    EXPECT_EQ(p->megate_sr, sr);
    EXPECT_TRUE(p->valid_vni);
  }
}

TEST(Codec, SrHeaderRoundTrip) {
  SrHeader h;
  h.offset = 2;
  h.hops = {10, 20, 30, 40};
  Buffer b;
  ASSERT_TRUE(h.serialize(b));
  ASSERT_EQ(b.size(), h.wire_size());
  auto p = SrHeader::parse(b);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->offset, 2);
  EXPECT_EQ(p->hops, h.hops);
  EXPECT_EQ(p->next_hop(), 30u);
  EXPECT_FALSE(p->at_last_hop());
}

TEST(Codec, SrHeaderRejectsMalformed) {
  EXPECT_FALSE(SrHeader::parse(Buffer{}).has_value());
  Buffer zero_hops{0, 0, 0, 0};
  EXPECT_FALSE(SrHeader::parse(zero_hops).has_value());
  Buffer offset_past{2, 3, 0, 0, 0, 0, 0, 1, 0, 0, 0, 2};
  EXPECT_FALSE(SrHeader::parse(offset_past).has_value());
  Buffer truncated{4, 0, 0, 0, 0, 0, 0, 1};  // claims 4 hops, has 1
  EXPECT_FALSE(SrHeader::parse(truncated).has_value());
}

// --- eBPF map ------------------------------------------------------------

TEST(EbpfMap, BasicSemantics) {
  EbpfMap<int, int> m(2);
  EXPECT_TRUE(m.update(1, 10));
  EXPECT_TRUE(m.update(2, 20));
  EXPECT_FALSE(m.update(3, 30)) << "full map rejects new keys";
  EXPECT_TRUE(m.update(1, 11)) << "overwrite allowed when full";
  EXPECT_EQ(m.lookup(1), 11);
  EXPECT_EQ(m.lookup(3), std::nullopt);
  EXPECT_TRUE(m.erase(2));
  EXPECT_FALSE(m.erase(2));
  EXPECT_TRUE(m.update(3, 30));
  EXPECT_EQ(m.size(), 2u);
}

TEST(EbpfMap, UpdateInPlace) {
  EbpfMap<int, int> m(4);
  m.update(1, 5);
  EXPECT_TRUE(m.update_in_place(1, [](int& v) { v += 7; }));
  EXPECT_EQ(m.lookup(1), 12);
  EXPECT_FALSE(m.update_in_place(9, [](int&) {}));
}

// --- host stack ----------------------------------------------------------

TEST(HostStack, InstanceIdentificationJoin) {
  HostStack hs;
  hs.on_sys_enter_execve(/*pid=*/100, /*instance=*/777);
  const FiveTuple t = tuple();
  hs.on_conntrack_event(t, 100);
  EXPECT_EQ(hs.instance_of(t), 777u);
}

TEST(HostStack, UnknownPidLeavesNoMapping) {
  HostStack hs;
  const FiveTuple t = tuple();
  hs.on_conntrack_event(t, 999);  // no execve seen for pid 999
  EXPECT_EQ(hs.instance_of(t), std::nullopt);
}

TEST(HostStack, TrafficAccounting) {
  HostStack hs;
  const FiveTuple t = tuple();
  Buffer frame = make_inner_frame(t, 100);
  hs.tc_egress(frame, 0x0A0000FF);
  hs.tc_egress(frame, 0x0A0000FF);
  auto stats = hs.stats_of(t);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->packets, 2u);
  EXPECT_EQ(stats->bytes, 2 * frame.size());
}

TEST(HostStack, FragmentAttribution) {
  HostStack hs;
  const FiveTuple t = tuple();
  // First fragment: carries L4 ports and registers ipid 42.
  Buffer first = make_inner_frame(t, 100, 42, /*more=*/true, /*off=*/0);
  hs.tc_egress(first, 0);
  EXPECT_EQ(hs.frag_map_size(), 1u);
  // Middle + last fragments carry no L4 header.
  Buffer mid = make_inner_frame(t, 100, 42, /*more=*/true, /*off=*/19);
  Buffer last = make_inner_frame(t, 60, 42, /*more=*/false, /*off=*/38);
  hs.tc_egress(mid, 0);
  hs.tc_egress(last, 0);
  auto stats = hs.stats_of(t);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->packets, 3u) << "all fragments attributed to the flow";
  // The last fragment no longer erases eagerly (fragments may arrive out
  // of order); the entry is reclaimed by generation expiry after staying
  // idle for one full collection period.
  EXPECT_EQ(hs.frag_map_size(), 1u) << "entry survives until expiry";
  hs.collect_flow_report(/*reset=*/true);  // touched this period: survives
  EXPECT_EQ(hs.frag_map_size(), 1u);
  hs.collect_flow_report(/*reset=*/true);  // idle a full period: reclaimed
  EXPECT_EQ(hs.frag_map_size(), 0u) << "stale entry expired";
  EXPECT_EQ(hs.counters().frag_entries_expired, 1u);
}

TEST(HostStack, UnknownFragmentIgnored) {
  HostStack hs;
  const FiveTuple t = tuple();
  Buffer orphan = make_inner_frame(t, 100, 7, /*more=*/true, /*off=*/19);
  hs.tc_egress(orphan, 0);
  EXPECT_EQ(hs.stats_of(t), std::nullopt);
}

TEST(HostStack, PassesWhenNoPathInstalled) {
  HostStack hs;
  Buffer frame = make_inner_frame(tuple());
  auto v = hs.tc_egress(frame, 0);
  EXPECT_EQ(v.action, TcVerdict::Action::kPass);
  EXPECT_EQ(v.packet, frame);
}

TEST(HostStack, DropsMalformedFrames) {
  HostStack hs;
  Buffer junk(10, 0xFF);
  EXPECT_EQ(hs.tc_egress(junk, 0).action,
            TcVerdict::Action::kDropMalformed);
  Buffer eth_only;
  EthernetHeader eth;
  eth.ether_type = 0x86DD;  // IPv6: unsupported
  eth.serialize(eth_only);
  EXPECT_EQ(hs.tc_egress(eth_only, 0).action,
            TcVerdict::Action::kDropMalformed);
}

TEST(HostStack, EncapsulatesWithSrHeader) {
  HostStack hs;
  hs.on_sys_enter_execve(100, 777);
  const FiveTuple t = tuple();
  hs.on_conntrack_event(t, 100);
  hs.install_path(777, {5, 9, 13});

  Buffer frame = make_inner_frame(t, 50);
  auto v = hs.tc_egress(frame, 0x0A0000FE);
  ASSERT_EQ(v.action, TcVerdict::Action::kEncapsulated);

  // Outer headers parse and carry the SR flag + hops.
  auto eth = EthernetHeader::parse(v.packet);
  ASSERT_TRUE(eth.has_value());
  ConstBytes rest = ConstBytes(v.packet).subspan(kEthernetHeaderSize);
  auto ip = Ipv4Header::parse(rest);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->dst_ip, 0x0A0000FEu);
  rest = rest.subspan(kIpv4HeaderSize);
  auto udp = UdpHeader::parse(rest);
  ASSERT_TRUE(udp.has_value());
  EXPECT_EQ(udp->dst_port, kVxlanPort);
  rest = rest.subspan(kUdpHeaderSize);
  auto vx = VxlanHeader::parse(rest);
  ASSERT_TRUE(vx.has_value());
  EXPECT_TRUE(vx->megate_sr);
  rest = rest.subspan(kVxlanHeaderSize);
  auto sr = SrHeader::parse(rest);
  ASSERT_TRUE(sr.has_value());
  EXPECT_EQ(sr->hops, (std::vector<std::uint32_t>{5, 9, 13}));
  EXPECT_EQ(sr->offset, 0);
  // The inner frame rides behind the SR header, byte-identical.
  rest = rest.subspan(sr->wire_size());
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), rest.begin()));
}

TEST(HostStack, UninstallRevertsToPass) {
  HostStack hs;
  hs.on_sys_enter_execve(1, 10);
  const FiveTuple t = tuple();
  hs.on_conntrack_event(t, 1);
  hs.install_path(10, {2});
  Buffer frame = make_inner_frame(t);
  EXPECT_EQ(hs.tc_egress(frame, 0).action,
            TcVerdict::Action::kEncapsulated);
  hs.install_path(10, {});
  EXPECT_EQ(hs.tc_egress(frame, 0).action, TcVerdict::Action::kPass);
}

TEST(HostStack, FlowReportJoinsAndAggregates) {
  HostStack hs;
  hs.on_sys_enter_execve(1, 42);
  const FiveTuple t1 = tuple(1000);
  const FiveTuple t2 = tuple(2000);
  hs.on_conntrack_event(t1, 1);
  hs.on_conntrack_event(t2, 1);
  Buffer f1 = make_inner_frame(t1, 10);
  Buffer f2 = make_inner_frame(t2, 30);
  hs.tc_egress(f1, 0);
  hs.tc_egress(f2, 0);
  auto report = hs.collect_flow_report();
  ASSERT_EQ(report.size(), 1u);  // both flows belong to instance 42
  EXPECT_EQ(report[0].instance, 42u);
  EXPECT_EQ(report[0].packets, 2u);
  EXPECT_EQ(report[0].bytes, f1.size() + f2.size());
  // Reset semantics: the next report is empty.
  EXPECT_TRUE(hs.collect_flow_report().empty());
}

TEST(HostStack, ReportSkipsUnattributedFlows) {
  HostStack hs;
  Buffer f = make_inner_frame(tuple());
  hs.tc_egress(f, 0);  // traffic but no conntrack/execve mapping
  EXPECT_TRUE(hs.collect_flow_report().empty());
}

// --- router ---------------------------------------------------------------

Buffer encapsulated_frame(HostStack& hs, const FiveTuple& t,
                          std::vector<std::uint32_t> hops) {
  hs.on_sys_enter_execve(1, 500);
  hs.on_conntrack_event(t, 1);
  hs.install_path(500, std::move(hops));
  auto v = hs.tc_egress(make_inner_frame(t), 0x0A0000FE);
  EXPECT_EQ(v.action, TcVerdict::Action::kEncapsulated);
  return v.packet;
}

TEST(Router, FollowsSrHops) {
  HostStack hs;
  Buffer pkt = encapsulated_frame(hs, tuple(), {7, 8, 9});
  // Router 7 is the first segment: it advances the offset and points the
  // packet at the next segment (8); router 9 is the egress.
  Router r7(7, 4);
  auto d = r7.forward(pkt);
  ASSERT_EQ(d.kind, ForwardDecision::Kind::kSegmentRouted);
  EXPECT_EQ(d.next_hop, 8u);
  Router r8(8, 4);
  auto d2 = r8.forward(d.packet);
  ASSERT_EQ(d2.kind, ForwardDecision::Kind::kSegmentRouted);
  EXPECT_EQ(d2.next_hop, 9u);
  Router r9(9, 4);
  auto d3 = r9.forward(d2.packet);
  EXPECT_EQ(d3.kind, ForwardDecision::Kind::kDeliverLocal);
  EXPECT_EQ(d3.next_hop, 9u);
}

TEST(Router, TransitSiteForwardsWithoutAdvancing) {
  // A site that is not the current segment forwards toward the segment
  // without touching the offset (e.g. an intermediate underlay hop).
  HostStack hs;
  Buffer pkt = encapsulated_frame(hs, tuple(), {7, 9});
  Router transit(5, 4);
  auto d = transit.forward(pkt);
  ASSERT_EQ(d.kind, ForwardDecision::Kind::kSegmentRouted);
  EXPECT_EQ(d.next_hop, 7u);
  const std::size_t off_pos = kEthernetHeaderSize + kIpv4HeaderSize +
                              kUdpHeaderSize + kVxlanHeaderSize + 1;
  EXPECT_EQ(d.packet[off_pos], 0);
}

TEST(Router, EcmpForNonSrTraffic) {
  // An underlay packet without VXLAN/SR falls back to hashing.
  Buffer b;
  EthernetHeader eth;
  eth.serialize(b);
  Ipv4Header ip;
  ip.protocol = kProtoUdp;
  ip.total_length = kIpv4HeaderSize + kUdpHeaderSize;
  ip.src_ip = 1;
  ip.dst_ip = 2;
  ip.serialize(b);
  UdpHeader udp;
  udp.src_port = 9999;
  udp.dst_port = 53;  // not the VXLAN port
  udp.serialize(b);
  Router r(0, 4);
  auto d = r.forward(b);
  ASSERT_EQ(d.kind, ForwardDecision::Kind::kEcmpHashed);
  EXPECT_LT(d.next_hop, 4u);
  // Same five-tuple -> same bucket (flow affinity).
  EXPECT_EQ(r.forward(b).next_hop, d.next_hop);
}

TEST(Router, EcmpHashStableAndSpread) {
  std::uint32_t buckets[4] = {0, 0, 0, 0};
  for (std::uint16_t p = 0; p < 400; ++p) {
    FiveTuple t = tuple(p);
    const std::uint32_t b = Router::ecmp_hash(t, 4);
    ASSERT_LT(b, 4u);
    buckets[b]++;
    EXPECT_EQ(Router::ecmp_hash(t, 4), b);
  }
  for (std::uint32_t c : buckets) EXPECT_GT(c, 40u) << "hash badly skewed";
}

TEST(Router, DropsMalformed) {
  Router r(0, 4);
  EXPECT_EQ(r.forward(Buffer(5, 0)).kind, ForwardDecision::Kind::kDrop);
}

TEST(Router, SrOffsetAdvancesOnWire) {
  HostStack hs;
  Buffer pkt = encapsulated_frame(hs, tuple(), {3, 4});
  Router r(3, 2);  // the current segment: advances the offset
  auto d = r.forward(pkt);
  const std::size_t off_pos = kEthernetHeaderSize + kIpv4HeaderSize +
                              kUdpHeaderSize + kVxlanHeaderSize + 1;
  EXPECT_EQ(pkt[off_pos], 0);
  EXPECT_EQ(d.packet[off_pos], 1);
  EXPECT_EQ(d.next_hop, 4u);
}

}  // namespace
}  // namespace megate::dataplane
