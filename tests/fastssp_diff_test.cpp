// Differential test for FastSSP (ISSUE satellite): on instances small
// enough for the exact pseudo-polynomial DP (<= 20 flows), the gap between
// FastSSP and the exact optimum must respect the documented Appendix A.2
// bound beta <= min(residual demand) / F, i.e.
//
//   dp.total - fast.total  <=  stats.error_bound * capacity + tolerance.
//
// The DP runs on a grid fine enough (capacity / 2e5) that its own
// quantization error is far below the tolerance.

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "megate/ssp/fast_ssp.h"
#include "megate/ssp/subset_sum.h"
#include "megate/util/rng.h"

namespace megate::ssp {
namespace {

struct DiffCase {
  std::uint64_t seed;
  int flows;            // <= 20 so the exact DP is cheap
  double cap_fraction;  // capacity as a share of total demand
};

class FastSspDifferential : public ::testing::TestWithParam<DiffCase> {};

TEST_P(FastSspDifferential, GapWithinDocumentedBound) {
  const DiffCase c = GetParam();
  util::Rng rng(c.seed);
  std::vector<double> v;
  for (int i = 0; i < c.flows; ++i) v.push_back(rng.lognormal(-1.0, 1.0));
  const double total = std::accumulate(v.begin(), v.end(), 0.0);
  const double cap = total * c.cap_fraction;

  FastSspStats stats;
  const Selection fast = fast_ssp(v, cap, {}, &stats);
  const Selection dp = solve_dp(v, cap, cap / 2e5);

  // Both feasible, both self-consistent.
  EXPECT_LE(fast.total, cap + 1e-9);
  EXPECT_LE(dp.total, cap + 1e-9);
  double fast_sum = 0.0;
  for (std::size_t i : fast.indices) fast_sum += v[i];
  EXPECT_NEAR(fast_sum, fast.total, 1e-9);

  // The exact optimum can beat FastSSP by at most the documented bound.
  const double gap = dp.total - fast.total;
  const double dp_grid_slack = static_cast<double>(v.size()) * cap / 2e5;
  EXPECT_LE(gap, stats.error_bound * cap + dp_grid_slack + 1e-9)
      << "seed=" << c.seed << " flows=" << c.flows
      << " cap_fraction=" << c.cap_fraction << " dp=" << dp.total
      << " fast=" << fast.total << " bound=" << stats.error_bound * cap;

  // When nothing is left out the bound is zero and FastSSP is exact.
  if (fast.indices.size() == v.size()) {
    EXPECT_DOUBLE_EQ(stats.error_bound, 0.0);
    EXPECT_NEAR(fast.total, dp.total, dp_grid_slack + 1e-9);
  }
}

std::vector<DiffCase> diff_cases() {
  std::vector<DiffCase> cases;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (const double frac : {0.3, 0.6, 0.9}) {
      cases.push_back({seed, 5 + static_cast<int>(seed), frac});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FastSspDifferential, ::testing::ValuesIn(diff_cases()),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      char name[64];
      std::snprintf(name, sizeof(name), "seed%llu_flows%d_cap%d",
                    static_cast<unsigned long long>(info.param.seed),
                    info.param.flows,
                    static_cast<int>(info.param.cap_fraction * 100));
      return std::string(name);
    });

}  // namespace
}  // namespace megate::ssp
