// Tests for the online intra-interval TE pipeline (ISSUE 9): the
// tm::DemandStream event timeline (deterministic replay, stable flow
// indices, divergence detection), the te::OnlineAllocator (invariants
// I1-I4, the shrink/top-up/move/shed admission ladder, drift-triggered
// re-solve recommendations, thread-safe snapshots), the patched-vs-
// re-solved differential, and the sim::PeriodSim / fault::run_chaos
// integrations (churn changes outcomes deterministically; online
// patching never carries less than going stale).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "megate/fault/chaos.h"
#include "megate/obs/metrics.h"
#include "megate/sim/period_sim.h"
#include "megate/te/megate_solver.h"
#include "megate/te/online_allocator.h"
#include "megate/tm/demand_stream.h"
#include "test_helpers.h"

namespace megate {
namespace {

tm::ChurnOptions busy_churn(std::uint64_t seed = 7) {
  tm::ChurnOptions c;
  c.seed = seed;
  c.horizon_s = 100.0;
  c.flow_scale_events = 12;
  c.flash_crowds = 3;
  c.diurnal_steps = 2;
  c.endpoint_arrivals = 2;
  c.endpoint_departures = 2;
  return c;
}

std::vector<std::string> timeline(const tm::DemandStream& s) {
  std::vector<std::string> out;
  for (const tm::DemandEvent& e : s.events()) out.push_back(e.to_log());
  return out;
}

// --- DemandStream -----------------------------------------------------------

TEST(DemandStreamTest, SameSeedReplaysBitwiseIdentically) {
  auto s = testing::make_scenario(6, 10, 3);
  const tm::ChurnOptions c = busy_churn();
  const tm::DemandStream a = tm::DemandStream::generate(s->traffic, c);
  const tm::DemandStream b = tm::DemandStream::generate(s->traffic, c);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(timeline(a), timeline(b));

  tm::TrafficMatrix ma = s->traffic;
  tm::TrafficMatrix mb = s->traffic;
  for (const tm::DemandEvent& e : a.events()) tm::DemandStream::apply(e, ma);
  for (const tm::DemandEvent& e : b.events()) tm::DemandStream::apply(e, mb);
  EXPECT_EQ(tm::DemandStream::fingerprint(ma),
            tm::DemandStream::fingerprint(mb));
  // The timeline actually moved demand.
  EXPECT_NE(tm::DemandStream::fingerprint(ma),
            tm::DemandStream::fingerprint(s->traffic));
}

TEST(DemandStreamTest, DifferentSeedsDiverge) {
  auto s = testing::make_scenario(6, 10, 3);
  const tm::DemandStream a =
      tm::DemandStream::generate(s->traffic, busy_churn(7));
  const tm::DemandStream b =
      tm::DemandStream::generate(s->traffic, busy_churn(8));
  EXPECT_NE(timeline(a), timeline(b));
}

TEST(DemandStreamTest, FlowIndicesAreStable) {
  auto s = testing::make_scenario(6, 10, 3);
  const tm::DemandStream stream =
      tm::DemandStream::generate(s->traffic, busy_churn());
  // Per-pair flow counts never shrink: departures leave zero-demand
  // placeholders, arrivals only append.
  tm::TrafficMatrix m = s->traffic;
  std::unordered_map<topo::SitePair, std::size_t, topo::SitePairHash> sizes;
  for (const auto& [pair, flows] : m.pairs()) sizes[pair] = flows.size();
  bool saw_departure = false;
  for (const tm::DemandEvent& e : stream.events()) {
    tm::DemandStream::apply(e, m);
    for (const auto& [pair, flows] : m.pairs()) {
      EXPECT_GE(flows.size(), sizes[pair]) << e.to_log();
      sizes[pair] = flows.size();
    }
    if (e.kind == tm::DemandEventKind::kEndpointDeparture) {
      saw_departure = true;
      for (const tm::FlowChange& c : e.changes) {
        const auto& flows = m.pairs().at(c.pair);
        ASSERT_LT(c.flow_index, flows.size());
        EXPECT_EQ(flows[c.flow_index].demand_gbps, 0.0);
      }
    }
  }
  EXPECT_TRUE(saw_departure);
}

TEST(DemandStreamTest, ApplyDetectsDivergedMatrix) {
  auto s = testing::make_scenario(6, 10, 3);
  tm::ChurnOptions c = busy_churn();
  c.endpoint_arrivals = 2;
  const tm::DemandStream stream =
      tm::DemandStream::generate(s->traffic, c);
  const tm::DemandEvent* arrival = nullptr;
  for (const tm::DemandEvent& e : stream.events()) {
    if (e.kind == tm::DemandEventKind::kEndpointArrival &&
        !e.changes.empty()) {
      arrival = &e;
      break;
    }
  }
  ASSERT_NE(arrival, nullptr);
  // Sabotage the matrix: dropping the target pair's flows leaves the
  // recorded append index dangling beyond the tail.
  tm::TrafficMatrix m = s->traffic;
  auto& flows = m.pairs().at(arrival->changes.front().pair);
  ASSERT_GT(arrival->changes.front().flow_index, 0u);
  flows.clear();
  EXPECT_THROW(tm::DemandStream::apply(*arrival, m), std::runtime_error);
}

TEST(DemandStreamTest, NextDueCursorWalksTheTimeline) {
  auto s = testing::make_scenario(6, 10, 3);
  tm::DemandStream stream =
      tm::DemandStream::generate(s->traffic, busy_churn());
  ASSERT_FALSE(stream.empty());
  const double mid = stream.events().back().time_s / 2.0;
  std::size_t drained = 0;
  while (stream.next_due(mid) != nullptr) ++drained;
  EXPECT_EQ(stream.cursor(), drained);
  for (std::size_t i = 0; i < drained; ++i) {
    EXPECT_LE(stream.events()[i].time_s, mid);
  }
  std::size_t rest = 0;
  while (stream.next_due(1e18) != nullptr) ++rest;
  EXPECT_EQ(drained + rest, stream.events().size());
  EXPECT_EQ(stream.next_due(1e18), nullptr);
  stream.reset();
  EXPECT_EQ(stream.cursor(), 0u);
}

TEST(DemandStreamTest, NoteEventFeedsChurnCounters) {
  auto s = testing::make_scenario(6, 10, 3);
  const tm::DemandStream stream =
      tm::DemandStream::generate(s->traffic, busy_churn());
  obs::MetricsRegistry m;
  std::size_t flows_changed = 0;
  for (const tm::DemandEvent& e : stream.events()) {
    tm::DemandStream::note_event(&m, e);
    flows_changed += e.changes.size();
  }
  EXPECT_EQ(m.counter("tm.churn.events").value(), stream.events().size());
  EXPECT_EQ(m.counter("tm.churn.flows_changed").value(), flows_changed);
  // Null registry is a documented no-op.
  tm::DemandStream::note_event(nullptr, stream.events().front());
}

// --- OnlineAllocator --------------------------------------------------------

constexpr std::uint32_t kBudget = 4;

/// Recomputes the allocator's state from scratch and asserts I1-I4.
void audit_invariants(const testing::Scenario& s,
                      const tm::TrafficMatrix& current,
                      const te::OnlineAllocator& alloc,
                      const std::string& context) {
  const te::TeSolution sol = alloc.snapshot();
  const auto res = alloc.reservations_snapshot();
  std::vector<double> usage(s.graph.num_links(), 0.0);
  double satisfied = 0.0;
  for (const auto& [pair, rv] : res) {
    const auto sit = sol.pairs.find(pair);
    const auto mit = current.pairs().find(pair);
    const auto& tuns = s.tunnels.tunnels(pair.src, pair.dst);
    std::vector<double> per_tunnel(tuns.size(), 0.0);
    for (std::size_t i = 0; i < rv.size(); ++i) {
      if (rv[i] <= 0.0) continue;
      satisfied += rv[i];
      // I3: 0 <= reservation <= current demand.
      ASSERT_TRUE(mit != current.pairs().end() && i < mit->second.size())
          << context;
      EXPECT_LE(rv[i], mit->second[i].demand_gbps + 1e-6) << context;
      ASSERT_TRUE(sit != sol.pairs.end() &&
                  i < sit->second.flow_tunnel.size())
          << context;
      const std::int32_t t = sit->second.flow_tunnel[i];
      ASSERT_GE(t, 0) << context << ": reservation without a tunnel";
      const topo::Tunnel& tunnel = tuns[static_cast<std::size_t>(t)];
      // I2: never on a dead or over-budget tunnel.
      EXPECT_TRUE(tunnel.alive(s.graph)) << context;
      EXPECT_LE(tunnel.hops(), kBudget) << context;
      per_tunnel[static_cast<std::size_t>(t)] += rv[i];
      for (topo::EdgeId e : tunnel.links) usage[e] += rv[i];
    }
    // I4: tunnel_alloc is the per-tunnel sum of its flows' reservations.
    if (sit != sol.pairs.end()) {
      for (std::size_t t = 0;
           t < per_tunnel.size() && t < sit->second.tunnel_alloc.size();
           ++t) {
        EXPECT_NEAR(sit->second.tunnel_alloc[t], per_tunnel[t], 1e-6)
            << context;
      }
    }
  }
  // I1: no link over capacity * headroom.
  for (topo::EdgeId e = 0; e < s.graph.num_links(); ++e) {
    EXPECT_LE(usage[e], s.graph.link(e).capacity_gbps *
                            alloc.options().headroom + 1e-6)
        << context << " link " << e;
  }
  // I4: satisfied_gbps == sum of reservations.
  EXPECT_NEAR(sol.satisfied_gbps, satisfied, 1e-6) << context;
}

struct OnlineFixture {
  std::unique_ptr<testing::Scenario> s;
  te::TeProblem problem;
  te::TeSolution sol;

  explicit OnlineFixture(double load = 0.15, std::uint64_t seed = 42) {
    s = testing::make_scenario(8, 14, 3, load, seed);
    problem = s->problem();
    te::MegaTeOptions mopt;
    mopt.site_lp.max_sr_hops = kBudget;
    sol = te::MegaTeSolver(mopt).solve(problem, {}).solution;
  }
};

te::OnlineOptions budgeted_options() {
  te::OnlineOptions o;
  o.max_sr_hops = kBudget;
  return o;
}

TEST(OnlineAllocatorTest, InvariantsHoldThroughBusyChurn) {
  OnlineFixture f(0.4);
  te::OnlineAllocator alloc(budgeted_options());
  alloc.rebase(f.problem, f.sol);
  audit_invariants(*f.s, f.s->traffic, alloc, "after rebase");

  tm::TrafficMatrix m = f.s->traffic;
  const tm::DemandStream stream =
      tm::DemandStream::generate(f.s->traffic, busy_churn());
  for (const tm::DemandEvent& e : stream.events()) {
    tm::DemandStream::apply(e, m);
    alloc.apply(e);
    audit_invariants(*f.s, m, alloc, e.to_log());
  }
}

/// A hand-built single-flow event (the unit-level admission probes).
tm::DemandEvent flow_event(const topo::SitePair& pair, std::uint32_t index,
                           const tm::EndpointDemand& f, double after) {
  tm::DemandEvent e;
  e.kind = after > f.demand_gbps ? tm::DemandEventKind::kFlowScaleUp
                                 : tm::DemandEventKind::kFlowScaleDown;
  tm::FlowChange c;
  c.pair = pair;
  c.flow_index = index;
  c.src = f.src;
  c.dst = f.dst;
  c.qos = f.qos;
  c.before_gbps = f.demand_gbps;
  c.after_gbps = after;
  e.changes.push_back(c);
  return e;
}

/// First (pair, index, flow) with an assigned tunnel.
std::tuple<topo::SitePair, std::uint32_t, tm::EndpointDemand>
first_assigned(const OnlineFixture& f) {
  for (const auto& [pair, flows] : f.s->traffic.pairs()) {
    auto it = f.sol.pairs.find(pair);
    if (it == f.sol.pairs.end()) continue;
    for (std::size_t i = 0;
         i < flows.size() && i < it->second.flow_tunnel.size(); ++i) {
      if (it->second.flow_tunnel[i] >= 0 && flows[i].demand_gbps > 0.0) {
        return {pair, static_cast<std::uint32_t>(i), flows[i]};
      }
    }
  }
  ADD_FAILURE() << "no assigned flow in the fixture solution";
  return {};
}

TEST(OnlineAllocatorTest, ShrinkReleasesAndDepartureUnassigns) {
  OnlineFixture f;
  te::OnlineAllocator alloc(budgeted_options());
  alloc.rebase(f.problem, f.sol);
  auto [pair, index, flow] = first_assigned(f);

  const double half = flow.demand_gbps / 2.0;
  const te::PatchResult shrink =
      alloc.apply(flow_event(pair, index, flow, half));
  EXPECT_NEAR(shrink.released_gbps, flow.demand_gbps - half, 1e-9);
  EXPECT_EQ(shrink.flows_patched, 1u);

  tm::EndpointDemand at_half = flow;
  at_half.demand_gbps = half;
  const te::PatchResult gone =
      alloc.apply(flow_event(pair, index, at_half, 0.0));
  EXPECT_NEAR(gone.released_gbps, half, 1e-9);
  const te::TeSolution snap = alloc.snapshot();
  EXPECT_EQ(snap.pairs.at(pair).flow_tunnel[index], -1);
  EXPECT_EQ(alloc.reservations_snapshot().at(pair)[index], 0.0);
}

TEST(OnlineAllocatorTest, GrowthTopsUpOnResidualCapacity) {
  OnlineFixture f(0.05);  // light load: plenty of residual
  te::OnlineAllocator alloc(budgeted_options());
  alloc.rebase(f.problem, f.sol);
  auto [pair, index, flow] = first_assigned(f);

  const double target = flow.demand_gbps * 1.5;
  const te::PatchResult grow =
      alloc.apply(flow_event(pair, index, flow, target));
  EXPECT_NEAR(grow.admitted_gbps, target - flow.demand_gbps, 1e-9);
  EXPECT_EQ(grow.flows_shed, 0u);
  EXPECT_NEAR(alloc.reservations_snapshot().at(pair)[index], target, 1e-9);
}

TEST(OnlineAllocatorTest, ImpossibleGrowthShedsLoudly) {
  OnlineFixture f;
  obs::MetricsRegistry metrics;
  te::OnlineOptions oopt = budgeted_options();
  oopt.metrics = &metrics;
  te::OnlineAllocator alloc(oopt);
  alloc.rebase(f.problem, f.sol);
  auto [pair, index, flow] = first_assigned(f);

  // No WAN carries an exabit flow: most of it must be shed, loudly.
  const te::PatchResult pr =
      alloc.apply(flow_event(pair, index, flow, 1e9));
  EXPECT_GT(pr.shed_gbps, 0.0);
  EXPECT_GE(pr.flows_shed, 1u);
  EXPECT_EQ(metrics.counter("te.online.flows_shed").value(), 1u);
  // What was admitted is still invariant-clean (partial admission).
  tm::TrafficMatrix m = f.s->traffic;
  m.pairs().at(pair)[index].demand_gbps = 1e9;
  audit_invariants(*f.s, m, alloc, "after shed");
}

TEST(OnlineAllocatorTest, DriftCrossingRecommendsResolve) {
  OnlineFixture f;
  te::OnlineOptions oopt = budgeted_options();
  oopt.resolve_drift_fraction = 0.05;
  te::OnlineAllocator alloc(oopt);
  alloc.rebase(f.problem, f.sol);

  tm::ChurnOptions c = busy_churn();
  c.scale_up_min = 2.5;
  c.scale_up_max = 4.0;
  const tm::DemandStream stream =
      tm::DemandStream::generate(f.s->traffic, c);
  double last_drift = 0.0;
  bool recommended = false;
  for (const tm::DemandEvent& e : stream.events()) {
    const te::PatchResult pr = alloc.apply(e);
    EXPECT_GE(pr.drift_fraction, last_drift);  // cumulative, monotone
    last_drift = pr.drift_fraction;
    recommended = recommended || pr.resolve_recommended;
  }
  EXPECT_TRUE(recommended);
  EXPECT_GT(alloc.drift_fraction(), 0.05);
}

TEST(OnlineAllocatorTest, ApplyBeforeRebaseThrows) {
  te::OnlineAllocator alloc;
  EXPECT_THROW(alloc.apply(tm::DemandEvent{}), std::logic_error);
  EXPECT_FALSE(alloc.has_base());
}

TEST(OnlineAllocatorTest, FractionalOnlySolutionRejected) {
  OnlineFixture f;
  te::TeSolution fractional = f.sol;
  // Strip the per-flow assignments from a pair that has flows: a
  // fractional (LP-only) allocation is not patchable.
  bool stripped = false;
  for (auto& [pair, alloc] : fractional.pairs) {
    auto it = f.s->traffic.pairs().find(pair);
    if (it == f.s->traffic.pairs().end() || it->second.empty()) continue;
    alloc.flow_tunnel.clear();
    stripped = true;
    break;
  }
  ASSERT_TRUE(stripped);
  te::OnlineAllocator alloc(budgeted_options());
  EXPECT_THROW(alloc.rebase(f.problem, fractional), std::invalid_argument);
}

// --- patched vs re-solved differential --------------------------------------

TEST(OnlineDifferential, PatchedStaysWithinBoundedRegret) {
  OnlineFixture f(0.3, 17);
  te::OnlineAllocator alloc(budgeted_options());
  alloc.rebase(f.problem, f.sol);

  tm::TrafficMatrix m = f.s->traffic;
  const tm::DemandStream stream =
      tm::DemandStream::generate(f.s->traffic, busy_churn(11));
  for (const tm::DemandEvent& e : stream.events()) {
    tm::DemandStream::apply(e, m);
    alloc.apply(e);
  }
  audit_invariants(*f.s, m, alloc, "final");

  // Stale boundary-only carriage: min(solve-time reservation, demand).
  double stale = 0.0;
  for (const auto& [pair, flows] : m.pairs()) {
    auto bit = f.s->traffic.pairs().find(pair);
    auto sit = f.sol.pairs.find(pair);
    if (bit == f.s->traffic.pairs().end() || sit == f.sol.pairs.end()) {
      continue;
    }
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (i >= bit->second.size() ||
          i >= sit->second.flow_tunnel.size() ||
          sit->second.flow_tunnel[i] < 0) {
        continue;
      }
      stale += std::min(bit->second[i].demand_gbps, flows[i].demand_gbps);
    }
  }
  const double patched = alloc.snapshot().satisfied_gbps;
  te::MegaTeOptions mopt;
  mopt.site_lp.max_sr_hops = kBudget;
  te::TeProblem final_problem = f.problem;
  final_problem.traffic = &m;
  const double resolved =
      te::MegaTeSolver(mopt).solve(final_problem, {}).solution
          .satisfied_gbps;

  // Fault-free, the patcher never does worse than going stale and stays
  // within bounded regret of a full re-solve (it can exceed it: partial
  // admissions are fractional where stage 2 is indivisible).
  EXPECT_GE(patched, stale - 1e-6);
  EXPECT_GE(patched, 0.8 * resolved);
}

// --- snapshot concurrency (TSan target) -------------------------------------

TEST(OnlineConcurrency, SnapshotsRaceApplyCleanly) {
  OnlineFixture f(0.4);
  te::OnlineAllocator alloc(budgeted_options());
  alloc.rebase(f.problem, f.sol);
  const tm::DemandStream stream =
      tm::DemandStream::generate(f.s->traffic, busy_churn());

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads{0};
  std::thread publisher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const te::TeSolution snap = alloc.snapshot();
      const auto res = alloc.reservations_snapshot();
      EXPECT_GE(snap.satisfied_gbps, -1e-9);
      reads.fetch_add(1 + res.size(), std::memory_order_relaxed);
      (void)alloc.drift_fraction();
    }
  });
  // Keep patching until the publisher has observably raced us at least
  // once (the event replay is fast enough to finish before the thread
  // is even scheduled).
  int round = 0;
  while (round < 20 || reads.load(std::memory_order_relaxed) == 0) {
    for (const tm::DemandEvent& e : stream.events()) alloc.apply(e);
    ++round;
  }
  stop.store(true, std::memory_order_relaxed);
  publisher.join();
  EXPECT_GT(reads.load(), 0u);
}

// --- PeriodSim integration --------------------------------------------------

sim::PeriodSimOptions churny_period_options() {
  sim::PeriodSimOptions o;
  o.periods = 4;
  o.seed = 3;
  o.churn = busy_churn();
  return o;
}

TEST(PeriodSimChurnTest, ChurnChangesOutcomesDeterministically) {
  auto s = testing::make_scenario(6, 10, 3);
  sim::PeriodSimOptions quiet;
  quiet.periods = 4;
  quiet.seed = 3;
  const auto base = sim::run_period_simulation(
      s->graph, s->tunnels, s->traffic, sim::DemandKnowledge::kOracle,
      quiet);
  const auto churned = sim::run_period_simulation(
      s->graph, s->tunnels, s->traffic, sim::DemandKnowledge::kOracle,
      churny_period_options());
  const auto churned2 = sim::run_period_simulation(
      s->graph, s->tunnels, s->traffic, sim::DemandKnowledge::kOracle,
      churny_period_options());

  ASSERT_EQ(base.size(), churned.size());
  std::size_t events = 0;
  for (std::size_t p = 0; p < churned.size(); ++p) {
    events += churned[p].churn_events;
    EXPECT_EQ(base[p].churn_events, 0u);
    // Determinism: bit-identical outcomes across runs.
    EXPECT_EQ(churned[p].churn_events, churned2[p].churn_events);
    EXPECT_EQ(churned[p].actual_total_gbps, churned2[p].actual_total_gbps);
    EXPECT_EQ(churned[p].carried_gbps, churned2[p].carried_gbps);
    EXPECT_EQ(churned[p].churn_delta_gbps, churned2[p].churn_delta_gbps);
  }
  EXPECT_GT(events, 0u);
  // Churn moved the measured totals away from the quiet run.
  bool diverged = false;
  for (std::size_t p = 0; p < churned.size(); ++p) {
    diverged = diverged ||
               churned[p].actual_total_gbps != base[p].actual_total_gbps;
  }
  EXPECT_TRUE(diverged);
}

TEST(PeriodSimChurnTest, OnlinePatchingNeverCarriesLessThanStale) {
  auto s = testing::make_scenario(6, 10, 3, 0.3);
  sim::PeriodSimOptions stale = churny_period_options();
  sim::PeriodSimOptions online = stale;
  online.online = true;
  online.online_options.resolve_drift_fraction = 0.0;  // pure patching

  const auto off = sim::run_period_simulation(
      s->graph, s->tunnels, s->traffic, sim::DemandKnowledge::kOracle,
      stale);
  const auto on = sim::run_period_simulation(
      s->graph, s->tunnels, s->traffic, sim::DemandKnowledge::kOracle,
      online);
  ASSERT_EQ(off.size(), on.size());
  double carried_off = 0.0, carried_on = 0.0, admitted = 0.0;
  for (std::size_t p = 0; p < off.size(); ++p) {
    EXPECT_EQ(off[p].churn_events, on[p].churn_events);  // same timeline
    carried_off += off[p].carried_gbps;
    carried_on += on[p].carried_gbps;
    admitted += on[p].online_admitted_gbps;
  }
  EXPECT_GE(carried_on, carried_off - 1e-6);
  EXPECT_GT(admitted, 0.0);
}

TEST(PeriodSimChurnTest, DriftTriggerForcesMidPeriodResolves) {
  auto s = testing::make_scenario(6, 10, 3, 0.3);
  sim::PeriodSimOptions o = churny_period_options();
  o.online = true;
  o.online_options.resolve_drift_fraction = 0.01;
  o.churn.scale_up_min = 2.5;
  o.churn.scale_up_max = 4.0;
  const auto outcomes = sim::run_period_simulation(
      s->graph, s->tunnels, s->traffic, sim::DemandKnowledge::kOracle, o);
  std::size_t resolves = 0;
  for (const auto& out : outcomes) resolves += out.online_resolves;
  EXPECT_GT(resolves, 0u);
}

TEST(PeriodSimChurnTest, ConstShimAcceptsFaultFreeChurn) {
  auto s = testing::make_scenario(6, 10, 3);
  const topo::Graph& const_graph = s->graph;
  const auto outcomes = sim::run_period_simulation(
      const_graph, s->tunnels, s->traffic, sim::DemandKnowledge::kOracle,
      churny_period_options());
  std::size_t events = 0;
  for (const auto& out : outcomes) events += out.churn_events;
  EXPECT_GT(events, 0u);
}

// --- chaos integration ------------------------------------------------------

fault::ChaosOptions churny_chaos() {
  fault::ChaosOptions o;
  o.sites = 8;
  o.duplex_links = 12;
  o.endpoints_per_site = 2;
  o.intervals = 6;
  o.interval_s = 15.0;
  o.plan.seed = 21;
  o.plan.horizon_s = 0.0;
  o.plan.quiet_tail_s = 45.0;
  o.plan.shard_crashes = 0;
  o.plan.link_failures = 0;
  o.plan.pull_drop_windows = 0;
  o.plan.stale_windows = 0;
  o.churn.seed = 5;
  o.churn.flow_scale_events = 8;
  o.churn.flash_crowds = 2;
  o.churn.endpoint_arrivals = 1;
  o.churn.endpoint_departures = 1;
  return o;
}

TEST(ChaosChurnTest, ChurnedRunIsDeterministicAndLogged) {
  const fault::ChaosReport a = fault::run_chaos(churny_chaos());
  const fault::ChaosReport b = fault::run_chaos(churny_chaos());
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.churn_log, b.churn_log);
  EXPECT_FALSE(a.churn_log.empty());
  std::size_t events = 0;
  for (const auto& s : a.intervals) events += s.churn_events;
  EXPECT_EQ(events, a.churn_log.size());
  EXPECT_TRUE(a.ok()) << (a.violations.empty() ? "not converged"
                                               : a.violations.front());
}

TEST(ChaosChurnTest, ChurnPerturbsTheFingerprint) {
  fault::ChaosOptions quiet = churny_chaos();
  quiet.churn = tm::ChurnOptions{};  // feature off
  const fault::ChaosReport without = fault::run_chaos(quiet);
  const fault::ChaosReport with = fault::run_chaos(churny_chaos());
  EXPECT_TRUE(without.churn_log.empty());
  EXPECT_NE(without.fingerprint, with.fingerprint);
}

TEST(ChaosChurnTest, OnlinePatchingSurvivesFaultsAndChurn) {
  fault::ChaosOptions o = churny_chaos();
  o.plan.shard_crashes = 1;
  o.plan.link_failures = 1;
  o.online_patch = true;
  const fault::ChaosReport report = fault::run_chaos(o);
  EXPECT_TRUE(report.violations.empty())
      << report.violations.front();
  std::size_t patches = 0;
  for (const auto& s : report.intervals) patches += s.online_patches;
  EXPECT_GT(patches, 0u);
  // Same options replay to the same fingerprint even with faults AND
  // churn striking the same intervals.
  const fault::ChaosReport again = fault::run_chaos(o);
  EXPECT_EQ(report.fingerprint, again.fingerprint);
}

}  // namespace
}  // namespace megate
