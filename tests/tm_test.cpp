// Tests for megate::tm — endpoint identifiers, the Weibull endpoint
// layout (paper Fig. 8), and the endpoint-granular traffic generator.

#include <gtest/gtest.h>

#include <cmath>

#include "megate/tm/endpoints.h"
#include "megate/tm/traffic.h"
#include "megate/topo/generators.h"

namespace megate::tm {
namespace {

topo::Graph small_graph() {
  topo::GeneratorOptions opt;
  opt.seed = 21;
  return topo::make_isp_like(8, 12, opt);
}

// --- endpoint ids ---------------------------------------------------------

TEST(EndpointId, PacksAndUnpacks) {
  const EndpointId ep = make_endpoint(17, 123456);
  EXPECT_EQ(endpoint_site(ep), 17u);
  EXPECT_EQ(endpoint_index(ep), 123456u);
}

TEST(EndpointId, DistinctSitesDistinctIds) {
  EXPECT_NE(make_endpoint(1, 0), make_endpoint(2, 0));
  EXPECT_NE(make_endpoint(1, 5), make_endpoint(1, 6));
}

// --- layout ----------------------------------------------------------------

TEST(EndpointLayout, TotalsAndAccess) {
  EndpointLayout layout({10, 20, 30});
  EXPECT_EQ(layout.num_sites(), 3u);
  EXPECT_EQ(layout.total_endpoints(), 60u);
  EXPECT_EQ(layout.endpoints_at(1), 20u);
}

TEST(GenerateEndpoints, RespectsMinimum) {
  auto g = small_graph();
  EndpointDistribution dist;
  dist.shape = 0.8;
  dist.scale = 0.01;  // nearly all samples round to zero
  dist.min_per_site = 3;
  auto layout = generate_endpoints(g, dist, 1);
  for (std::uint32_t c : layout.per_site()) EXPECT_GE(c, 3u);
}

TEST(GenerateEndpoints, DeterministicInSeed) {
  auto g = small_graph();
  EndpointDistribution dist;
  auto a = generate_endpoints(g, dist, 99);
  auto b = generate_endpoints(g, dist, 99);
  EXPECT_EQ(a.per_site(), b.per_site());
}

TEST(GenerateEndpoints, SpreadsOverOrdersOfMagnitude) {
  // The paper's Fig. 8 point: endpoint counts vary by orders of magnitude.
  topo::GeneratorOptions opt;
  opt.seed = 2;
  auto g = topo::make_topology(topo::TopologyKind::kDeltacom, opt);
  EndpointDistribution dist;
  dist.shape = 0.6;
  dist.scale = 2000.0;
  auto layout = generate_endpoints(g, dist, 5);
  std::uint32_t lo = ~0u, hi = 0;
  for (std::uint32_t c : layout.per_site()) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_GE(static_cast<double>(hi) / std::max(1u, lo), 100.0);
}

TEST(GenerateEndpointsWithTotal, HitsTargetApproximately) {
  topo::GeneratorOptions opt;
  opt.seed = 3;
  auto g = topo::make_topology(topo::TopologyKind::kDeltacom, opt);
  const std::uint64_t target = 100000;
  auto layout = generate_endpoints_with_total(g, target, 0.8, 7);
  const double ratio =
      static_cast<double>(layout.total_endpoints()) / target;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(WeibullCdf, KnownValues) {
  EXPECT_DOUBLE_EQ(weibull_cdf(0.0, 1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(weibull_cdf(-5.0, 1.0, 1.0), 0.0);
  // shape 1 == exponential: CDF(scale) = 1 - 1/e.
  EXPECT_NEAR(weibull_cdf(1.0, 1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_GT(weibull_cdf(10.0, 0.8, 1.0), 0.99);
}

TEST(WeibullCdf, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.1; x < 20.0; x += 0.1) {
    const double c = weibull_cdf(x, 0.8, 3.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

// --- traffic ---------------------------------------------------------------

TrafficOptions default_opts() {
  TrafficOptions o;
  o.flows_per_endpoint = 2.0;
  return o;
}

TEST(Traffic, GeneratesFlowsGroupedBySitePair) {
  auto g = small_graph();
  EndpointLayout layout(std::vector<std::uint32_t>(g.num_nodes(), 50));
  auto tm = generate_traffic(g, layout, default_opts(), 11);
  EXPECT_GT(tm.num_flows(), 0u);
  for (const auto& [pair, flows] : tm.pairs()) {
    EXPECT_NE(pair.src, pair.dst);
    for (const EndpointDemand& d : flows) {
      EXPECT_EQ(endpoint_site(d.src), pair.src);
      EXPECT_EQ(endpoint_site(d.dst), pair.dst);
      EXPECT_GT(d.demand_gbps, 0.0);
      EXPECT_LT(endpoint_index(d.src), 50u);
    }
  }
}

TEST(Traffic, FlowCountTracksTarget) {
  auto g = small_graph();
  EndpointLayout layout(std::vector<std::uint32_t>(g.num_nodes(), 100));
  TrafficOptions o = default_opts();
  o.flows_per_endpoint = 1.0;
  o.active_pair_fraction = 1.0;
  auto tm = generate_traffic(g, layout, o, 13);
  const double expected = static_cast<double>(layout.total_endpoints());
  EXPECT_NEAR(static_cast<double>(tm.num_flows()) / expected, 1.0, 0.15);
}

TEST(Traffic, DeterministicInSeed) {
  auto g = small_graph();
  EndpointLayout layout(std::vector<std::uint32_t>(g.num_nodes(), 30));
  auto a = generate_traffic(g, layout, default_opts(), 17);
  auto b = generate_traffic(g, layout, default_opts(), 17);
  EXPECT_EQ(a.num_flows(), b.num_flows());
  EXPECT_DOUBLE_EQ(a.total_demand_gbps(), b.total_demand_gbps());
}

TEST(Traffic, QosMixRoughlyMatchesFractions) {
  auto g = small_graph();
  EndpointLayout layout(std::vector<std::uint32_t>(g.num_nodes(), 200));
  TrafficOptions o = default_opts();
  o.flows_per_endpoint = 5.0;
  auto tm = generate_traffic(g, layout, o, 19);
  std::uint64_t counts[4] = {0, 0, 0, 0};
  for (const auto& [pair, flows] : tm.pairs()) {
    for (const auto& d : flows) counts[static_cast<int>(d.qos)]++;
  }
  const double total = static_cast<double>(tm.num_flows());
  EXPECT_NEAR(counts[1] / total, 0.10, 0.03);
  EXPECT_NEAR(counts[2] / total, 0.60, 0.05);
  EXPECT_NEAR(counts[3] / total, 0.30, 0.05);
}

TEST(Traffic, TargetTotalScalesDemands) {
  auto g = small_graph();
  EndpointLayout layout(std::vector<std::uint32_t>(g.num_nodes(), 40));
  TrafficOptions o = default_opts();
  o.target_total_gbps = 1234.5;
  auto tm = generate_traffic(g, layout, o, 23);
  EXPECT_NEAR(tm.total_demand_gbps(), 1234.5, 1e-6);
}

TEST(Traffic, SiteDemandsMatchFlowSums) {
  auto g = small_graph();
  EndpointLayout layout(std::vector<std::uint32_t>(g.num_nodes(), 20));
  auto tm = generate_traffic(g, layout, default_opts(), 29);
  auto site = tm.site_demands();
  double sum = 0.0;
  for (const auto& [pair, d] : site) sum += d;
  EXPECT_NEAR(sum, tm.total_demand_gbps(), 1e-9);
}

TEST(Traffic, SiteDemandsQosFilter) {
  auto g = small_graph();
  EndpointLayout layout(std::vector<std::uint32_t>(g.num_nodes(), 50));
  auto tm = generate_traffic(g, layout, default_opts(), 31);
  auto q1 = tm.site_demands(1);
  double sum1 = 0.0;
  for (const auto& [pair, d] : q1) sum1 += d;
  EXPECT_NEAR(sum1, tm.total_demand_gbps(QosClass::kClass1), 1e-9);
  EXPECT_LT(sum1, tm.total_demand_gbps());
}

TEST(Traffic, FilterExtractsOneClass) {
  auto g = small_graph();
  EndpointLayout layout(std::vector<std::uint32_t>(g.num_nodes(), 50));
  auto tm = generate_traffic(g, layout, default_opts(), 37);
  auto q3 = tm.filter(QosClass::kClass3);
  for (const auto& [pair, flows] : q3.pairs()) {
    for (const auto& d : flows) EXPECT_EQ(d.qos, QosClass::kClass3);
  }
  EXPECT_NEAR(q3.total_demand_gbps(),
              tm.total_demand_gbps(QosClass::kClass3), 1e-9);
}

TEST(Traffic, RejectsBadQosFractions) {
  auto g = small_graph();
  EndpointLayout layout(std::vector<std::uint32_t>(g.num_nodes(), 10));
  TrafficOptions o = default_opts();
  o.qos1_fraction = 0.5;
  o.qos2_fraction = 0.2;
  o.qos3_fraction = 0.2;  // sums to 0.9
  EXPECT_THROW(generate_traffic(g, layout, o, 1), std::invalid_argument);
}

TEST(Traffic, RejectsMismatchedLayout) {
  auto g = small_graph();
  EndpointLayout layout({1, 2});  // wrong site count
  EXPECT_THROW(generate_traffic(g, layout, default_opts(), 1),
               std::invalid_argument);
}

TEST(Traffic, Class3FlowsAreHeavier) {
  auto g = small_graph();
  EndpointLayout layout(std::vector<std::uint32_t>(g.num_nodes(), 200));
  TrafficOptions o = default_opts();
  o.flows_per_endpoint = 5.0;
  auto tm = generate_traffic(g, layout, o, 41);
  double sum1 = 0, n1 = 0, sum3 = 0, n3 = 0;
  for (const auto& [pair, flows] : tm.pairs()) {
    for (const auto& d : flows) {
      if (d.qos == QosClass::kClass1) sum1 += d.demand_gbps, n1 += 1;
      if (d.qos == QosClass::kClass3) sum3 += d.demand_gbps, n3 += 1;
    }
  }
  ASSERT_GT(n1, 0);
  ASSERT_GT(n3, 0);
  EXPECT_GT(sum3 / n3, 2.0 * (sum1 / n1));  // bulk flows dominate
}

TEST(Traffic, TotalLinkCapacityCountsUpLinksOnly) {
  auto g = small_graph();
  const double full = total_link_capacity_gbps(g);
  g.set_link_state(0, false);
  const double less = total_link_capacity_gbps(g);
  EXPECT_LT(less, full);
  EXPECT_NEAR(full - less, g.link(0).capacity_gbps, 1e-9);
}

}  // namespace
}  // namespace megate::tm
