// Tests for megate::topo — graph invariants, Dijkstra, Yen's k-shortest
// paths, the topology generators (Table 2 scales), failure injection and
// the text format round-trip.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "megate/topo/failures.h"
#include "megate/topo/format.h"
#include "megate/topo/generators.h"
#include "megate/topo/graph.h"
#include "megate/topo/shortest_path.h"
#include "megate/topo/tunnels.h"

namespace megate::topo {
namespace {

Graph triangle() {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  g.add_duplex_link(a, b, 100, 1.0);
  g.add_duplex_link(b, c, 100, 1.0);
  g.add_duplex_link(a, c, 100, 5.0);
  return g;
}

// --- Graph -----------------------------------------------------------------

TEST(Graph, AddNodesAndLinks) {
  Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_links(), 6u);  // duplex = 2 directed each
  EXPECT_EQ(g.find_node("b"), 1u);
  EXPECT_EQ(g.find_node("zzz"), kInvalidNode);
  EXPECT_EQ(g.out_edges(0).size(), 2u);
}

TEST(Graph, RejectsDuplicateNames) {
  Graph g;
  g.add_node("x");
  EXPECT_THROW(g.add_node("x"), std::invalid_argument);
}

TEST(Graph, RejectsEmptyName) {
  Graph g;
  EXPECT_THROW(g.add_node(""), std::invalid_argument);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g;
  const NodeId a = g.add_node("a");
  EXPECT_THROW(g.add_link(a, a, 10, 1.0), std::invalid_argument);
}

TEST(Graph, RejectsBadCapacity) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  EXPECT_THROW(g.add_link(a, b, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_link(a, b, 10.0, -1.0), std::invalid_argument);
}

TEST(Graph, LinkStateToggles) {
  Graph g = triangle();
  EXPECT_EQ(g.num_links_up(), 6u);
  g.set_link_state(0, false);
  EXPECT_EQ(g.num_links_up(), 5u);
  g.restore_all_links();
  EXPECT_EQ(g.num_links_up(), 6u);
}

TEST(Graph, ConnectivityReflectsFailures) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  auto [ab, ba] = g.add_duplex_link(a, b, 10, 1.0);
  EXPECT_TRUE(g.is_connected());
  g.set_link_state(ab, false);
  g.set_link_state(ba, false);
  EXPECT_FALSE(g.is_connected());
}

// --- shortest path ------------------------------------------------------

TEST(ShortestPath, PicksLowLatencyRoute) {
  Graph g = triangle();
  auto p = shortest_path(g, 0, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->latency_ms, 2.0);  // a-b-c beats a-c (5 ms)
  EXPECT_EQ(p->hops(), 2u);
}

TEST(ShortestPath, RespectsDownLinks) {
  Graph g = triangle();
  // Kill a->b so the direct a->c link must be used.
  for (EdgeId e = 0; e < g.num_links(); ++e) {
    const Link& l = g.link(e);
    if (l.src == 0 && l.dst == 1) g.set_link_state(e, false);
  }
  auto p = shortest_path(g, 0, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->latency_ms, 5.0);
}

TEST(ShortestPath, UnreachableReturnsNullopt) {
  Graph g;
  g.add_node("a");
  g.add_node("b");
  EXPECT_FALSE(shortest_path(g, 0, 1).has_value());
}

TEST(ShortestPath, BannedLinksAreAvoided) {
  Graph g = triangle();
  std::unordered_set<EdgeId> banned;
  for (EdgeId e = 0; e < g.num_links(); ++e) {
    const Link& l = g.link(e);
    if (l.src == 0 && l.dst == 1) banned.insert(e);
  }
  PathConstraints c;
  c.banned_links = &banned;
  auto p = shortest_path(g, 0, 2, c);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->latency_ms, 5.0);
}

TEST(ShortestPath, DistancesOneToAll) {
  Graph g = triangle();
  auto dist = shortest_distances(g, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);
}

// --- Yen's KSP ------------------------------------------------------------

TEST(Ksp, ReturnsSortedLooplessDistinctPaths) {
  GeneratorOptions opt;
  opt.seed = 3;
  Graph g = make_isp_like(20, 32, opt);
  auto paths = k_shortest_paths(g, 0, 15, 4);
  ASSERT_GE(paths.size(), 2u);
  std::set<std::vector<EdgeId>> seen;
  double prev = 0.0;
  for (const Path& p : paths) {
    EXPECT_GE(p.latency_ms, prev);
    prev = p.latency_ms;
    EXPECT_TRUE(seen.insert(p.links).second) << "duplicate path";
    // loopless: no node visited twice
    std::set<NodeId> nodes;
    nodes.insert(g.link(p.links.front()).src);
    for (EdgeId e : p.links) {
      EXPECT_TRUE(nodes.insert(g.link(e).dst).second) << "loop in path";
    }
    // contiguity: each link starts where the previous ended
    for (std::size_t i = 1; i < p.links.size(); ++i) {
      EXPECT_EQ(g.link(p.links[i]).src, g.link(p.links[i - 1]).dst);
    }
    EXPECT_EQ(g.link(p.links.front()).src, 0u);
    EXPECT_EQ(g.link(p.links.back()).dst, 15u);
  }
}

TEST(Ksp, FirstPathIsShortest) {
  Graph g = triangle();
  auto paths = k_shortest_paths(g, 0, 2, 3);
  ASSERT_GE(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].latency_ms, 2.0);
  EXPECT_DOUBLE_EQ(paths[1].latency_ms, 5.0);
}

TEST(Ksp, KZeroOrSameNode) {
  Graph g = triangle();
  EXPECT_TRUE(k_shortest_paths(g, 0, 2, 0).empty());
  EXPECT_TRUE(k_shortest_paths(g, 1, 1, 4).empty());
}

TEST(Tunnels, BuildCoversAllConnectedPairs) {
  Graph g = triangle();
  TunnelSet ts = build_tunnels(g);
  EXPECT_EQ(ts.num_pairs(), 6u);  // 3*2 ordered pairs
  const auto& t01 = ts.tunnels(0, 1);
  ASSERT_FALSE(t01.empty());
  EXPECT_DOUBLE_EQ(t01.front().weight, 1.0);  // best tunnel normalized to 1
  for (std::size_t i = 1; i < t01.size(); ++i) {
    EXPECT_GE(t01[i].weight, t01[i - 1].weight);
  }
}

TEST(Tunnels, AliveTracksLinkState) {
  Graph g = triangle();
  TunnelSet ts = build_tunnels(g);
  const auto& t02 = ts.tunnels(0, 2);
  ASSERT_FALSE(t02.empty());
  EXPECT_TRUE(t02.front().alive(g));
  g.set_link_state(t02.front().links.front(), false);
  EXPECT_FALSE(t02.front().alive(g));
}

TEST(Tunnels, RepairReplacesDeadTunnels) {
  GeneratorOptions opt;
  opt.seed = 5;
  Graph g = make_isp_like(12, 20, opt);
  TunnelSet ts = build_tunnels(g);
  auto events = inject_link_failures(g, 2, /*seed=*/11);
  ASSERT_FALSE(events.empty());
  repair_tunnels(g, ts);
  for (const auto& [pair, tunnels] : ts.all()) {
    for (const Tunnel& t : tunnels) {
      EXPECT_TRUE(t.alive(g)) << "repair left a dead tunnel";
    }
  }
  restore_failures(g, events);
}

// --- generators ------------------------------------------------------------

struct TopoCase {
  TopologyKind kind;
  std::size_t sites;
  std::size_t duplex_links;
};

class GeneratorSuite : public ::testing::TestWithParam<TopoCase> {};

TEST_P(GeneratorSuite, MatchesPublishedScale) {
  const TopoCase c = GetParam();
  GeneratorOptions opt;
  opt.seed = 42;
  Graph g = make_topology(c.kind, opt);
  EXPECT_EQ(g.num_nodes(), c.sites);
  EXPECT_EQ(g.num_links(), c.duplex_links * 2);
  EXPECT_TRUE(g.is_connected());
  for (const Link& l : g.links()) {
    EXPECT_GT(l.capacity_gbps, 0.0);
    EXPECT_GT(l.latency_ms, 0.0);
    EXPECT_GT(l.cost_per_gbps, 0.0);
    EXPECT_GT(l.availability, 0.99);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperTopologies, GeneratorSuite,
    ::testing::Values(TopoCase{TopologyKind::kB4, 12, 19},
                      TopoCase{TopologyKind::kDeltacom, 113, 161},
                      TopoCase{TopologyKind::kCogentco, 197, 245},
                      TopoCase{TopologyKind::kTwan, 100, 400}));

TEST(Generators, DeterministicInSeed) {
  GeneratorOptions opt;
  opt.seed = 77;
  Graph a = make_topology(TopologyKind::kB4, opt);
  Graph b = make_topology(TopologyKind::kB4, opt);
  ASSERT_EQ(a.num_links(), b.num_links());
  for (EdgeId e = 0; e < a.num_links(); ++e) {
    EXPECT_EQ(a.link(e).src, b.link(e).src);
    EXPECT_DOUBLE_EQ(a.link(e).capacity_gbps, b.link(e).capacity_gbps);
    EXPECT_DOUBLE_EQ(a.link(e).latency_ms, b.link(e).latency_ms);
  }
}

TEST(Generators, DifferentSeedsDiffer) {
  GeneratorOptions a, b;
  a.seed = 1;
  b.seed = 2;
  Graph ga = make_topology(TopologyKind::kB4, a);
  Graph gb = make_topology(TopologyKind::kB4, b);
  bool any_diff = false;
  for (EdgeId e = 0; e < ga.num_links() && e < gb.num_links(); ++e) {
    if (ga.link(e).latency_ms != gb.link(e).latency_ms) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, TwanSiteCountConfigurable) {
  GeneratorOptions opt;
  opt.twan_sites = 40;
  Graph g = make_topology(TopologyKind::kTwan, opt);
  EXPECT_EQ(g.num_nodes(), 40u);
}

TEST(Generators, RejectsImpossibleBudget) {
  GeneratorOptions opt;
  EXPECT_THROW(make_isp_like(10, 5, opt), std::invalid_argument);
  EXPECT_THROW(make_isp_like(1, 5, opt), std::invalid_argument);
}

// --- failures ----------------------------------------------------------

TEST(Failures, KeepsGraphConnected) {
  GeneratorOptions opt;
  opt.seed = 8;
  Graph g = make_topology(TopologyKind::kDeltacom, opt);
  auto events = inject_link_failures(g, 5, 123);
  EXPECT_EQ(events.size(), 5u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.num_links_up(), g.num_links() - 10);  // duplex pairs down
  restore_failures(g, events);
  EXPECT_EQ(g.num_links_up(), g.num_links());
}

TEST(Failures, DeterministicInSeed) {
  GeneratorOptions opt;
  Graph g1 = make_topology(TopologyKind::kB4, opt);
  Graph g2 = make_topology(TopologyKind::kB4, opt);
  auto e1 = inject_link_failures(g1, 3, 55);
  auto e2 = inject_link_failures(g2, 3, 55);
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].forward, e2[i].forward);
  }
}

TEST(Failures, ZeroCountIsNoop) {
  Graph g = triangle();
  auto events = inject_link_failures(g, 0, 1);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(g.num_links_up(), g.num_links());
}

// --- text format -----------------------------------------------------------

TEST(Format, RoundTripsGeneratedTopology) {
  GeneratorOptions opt;
  opt.seed = 4;
  Graph g = make_topology(TopologyKind::kB4, opt);
  std::stringstream ss;
  write_topology(ss, g);
  Graph h = read_topology(ss);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_links(), g.num_links());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(h.node_name(v), g.node_name(v));
  }
  // Total capacity/latency must survive (link order may differ).
  double cap_g = 0, cap_h = 0, lat_g = 0, lat_h = 0;
  for (const Link& l : g.links()) cap_g += l.capacity_gbps, lat_g += l.latency_ms;
  for (const Link& l : h.links()) cap_h += l.capacity_gbps, lat_h += l.latency_ms;
  EXPECT_NEAR(cap_g, cap_h, 1e-6);
  EXPECT_NEAR(lat_g, lat_h, 1e-6);
}

TEST(Format, RejectsMissingHeader) {
  std::stringstream ss("node a 0 0\n");
  EXPECT_THROW(read_topology(ss), FormatError);
}

TEST(Format, RejectsUnknownDirective) {
  std::stringstream ss("megate-topology v1\nrouter a 0 0\n");
  EXPECT_THROW(read_topology(ss), FormatError);
}

TEST(Format, RejectsLinkToUnknownNode) {
  std::stringstream ss(
      "megate-topology v1\nnode a 0 0\nlink a ghost 10 1 1 0.999\n");
  EXPECT_THROW(read_topology(ss), FormatError);
}

TEST(Format, IgnoresCommentsAndBlanks) {
  std::stringstream ss(
      "megate-topology v1\n# comment\n\nnode a 0 0\nnode b 1 1\n"
      "link a b 10 1 1 0.999  # trailing comment\n");
  Graph g = read_topology(ss);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_links(), 2u);
}

TEST(Format, RejectsMalformedNode) {
  std::stringstream ss("megate-topology v1\nnode onlyname\n");
  EXPECT_THROW(read_topology(ss), FormatError);
}

}  // namespace
}  // namespace megate::topo
