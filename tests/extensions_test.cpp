// Tests for the §8 extension features: site clustering, the hybrid sync
// planner, flow-demand prediction, the multi-period simulation, the
// cluster-contracted MaxSiteFlow and the VTEP receive path.

#include <gtest/gtest.h>

#include <set>

#include "megate/ctrl/hybrid_sync.h"
#include "megate/dataplane/host_stack.h"
#include "megate/sim/period_sim.h"
#include "megate/te/checker.h"
#include "megate/te/megate_solver.h"
#include "megate/te/site_lp.h"
#include "megate/tm/prediction.h"
#include "megate/topo/clustering.h"
#include "megate/util/rng.h"
#include "test_helpers.h"

namespace megate {
namespace {

using megate::testing::make_scenario;

// --- clustering -----------------------------------------------------------

TEST(Clustering, CoversAllSites) {
  auto s = make_scenario(20, 34, 5);
  auto assignment = topo::cluster_sites(s->graph, 4);
  ASSERT_EQ(assignment.size(), s->graph.num_nodes());
  EXPECT_EQ(topo::num_clusters(assignment), 4u);
}

TEST(Clustering, ClampsClusterCount) {
  auto s = make_scenario(6, 10, 5);
  auto one = topo::cluster_sites(s->graph, 1);
  EXPECT_EQ(topo::num_clusters(one), 1u);
  auto many = topo::cluster_sites(s->graph, 100);
  EXPECT_LE(topo::num_clusters(many), s->graph.num_nodes());
}

TEST(Clustering, Deterministic) {
  auto s = make_scenario(15, 26, 5);
  EXPECT_EQ(topo::cluster_sites(s->graph, 3),
            topo::cluster_sites(s->graph, 3));
}

// --- hybrid sync ------------------------------------------------------------

TEST(HybridSync, CoversRequestedShareWithFewInstances) {
  // Production-skewed demands (the paper: "a small part of the flows
  // account for most of the network traffic").
  auto s = make_scenario(8, 14, 60, 0.3);
  tm::EndpointLayout layout(
      std::vector<std::uint32_t>(s->graph.num_nodes(), 60));
  tm::TrafficOptions tmo;
  tmo.demand_sigma = 2.5;  // strongly heavy-tailed
  tm::TrafficMatrix traffic =
      tm::generate_traffic(s->graph, layout, tmo, 77);

  ctrl::SyncCostModel model;
  ctrl::HybridSyncOptions opt;
  opt.heavy_traffic_share = 0.9;
  auto plan = ctrl::plan_hybrid_sync(traffic, model, opt);
  EXPECT_GE(plan.covered_traffic_share, 0.9);
  const std::size_t total =
      plan.persistent_instances.size() + plan.polling_instances;
  EXPECT_LT(plan.persistent_instances.size(), total / 2);
}

TEST(HybridSync, ExtremesMatchPureModes) {
  auto s = make_scenario(8, 14, 30, 0.3);
  ctrl::SyncCostModel model;
  ctrl::HybridSyncOptions none;
  none.heavy_traffic_share = 0.0;
  auto pull_only = ctrl::plan_hybrid_sync(s->traffic, model, none);
  EXPECT_TRUE(pull_only.persistent_instances.empty());
  EXPECT_DOUBLE_EQ(pull_only.mean_staleness_s, none.poll_interval_s / 2.0);

  ctrl::HybridSyncOptions all;
  all.heavy_traffic_share = 1.0;
  auto push_only = ctrl::plan_hybrid_sync(s->traffic, model, all);
  EXPECT_EQ(push_only.polling_instances, 0u);
  EXPECT_NEAR(push_only.mean_staleness_s, all.push_latency_s, 1e-9);
}

TEST(HybridSync, StalenessDropsAsShareGrows) {
  auto s = make_scenario(8, 14, 40, 0.3);
  ctrl::SyncCostModel model;
  double prev_staleness = 1e9;
  double prev_cores = 0.0;
  for (double share : {0.0, 0.5, 0.9, 0.99}) {
    ctrl::HybridSyncOptions opt;
    opt.heavy_traffic_share = share;
    auto plan = ctrl::plan_hybrid_sync(s->traffic, model, opt);
    EXPECT_LE(plan.mean_staleness_s, prev_staleness + 1e-9);
    EXPECT_GE(plan.resources.cpu_cores, prev_cores - 1e-9);
    prev_staleness = plan.mean_staleness_s;
    prev_cores = plan.resources.cpu_cores;
  }
}

TEST(HybridSync, RejectsBadShare) {
  auto s = make_scenario(4, 6, 5);
  ctrl::SyncCostModel model;
  ctrl::HybridSyncOptions opt;
  opt.heavy_traffic_share = 1.5;
  EXPECT_THROW(ctrl::plan_hybrid_sync(s->traffic, model, opt),
               std::invalid_argument);
}

TEST(HybridSync, EmptyTrafficYieldsEmptyPlan) {
  tm::TrafficMatrix empty;
  ctrl::SyncCostModel model;
  auto plan = ctrl::plan_hybrid_sync(empty, model);
  EXPECT_TRUE(plan.persistent_instances.empty());
  EXPECT_EQ(plan.polling_instances, 0u);
}

// --- flow prediction --------------------------------------------------------

tm::TrafficMatrix one_flow(double demand) {
  tm::TrafficMatrix m;
  tm::EndpointDemand d;
  d.src = tm::make_endpoint(1, 0);
  d.dst = tm::make_endpoint(2, 0);
  d.demand_gbps = demand;
  m.add(d);
  return m;
}

TEST(Predictor, LastValueTracksExactly) {
  tm::FlowPredictor p(tm::PredictorKind::kLastValue);
  p.observe(one_flow(5.0));
  EXPECT_DOUBLE_EQ(p.predict().total_demand_gbps(), 5.0);
  p.observe(one_flow(9.0));
  EXPECT_DOUBLE_EQ(p.predict().total_demand_gbps(), 9.0);
}

TEST(Predictor, EwmaSmoothsNoise) {
  tm::FlowPredictor p(tm::PredictorKind::kEwma, 0.5);
  p.observe(one_flow(10.0));
  p.observe(one_flow(20.0));
  // 0.5*20 + 0.5*10 = 15.
  EXPECT_NEAR(p.predict().total_demand_gbps(), 15.0, 1e-9);
}

TEST(Predictor, LastValueForgetsQuietFlows) {
  tm::FlowPredictor p(tm::PredictorKind::kLastValue);
  p.observe(one_flow(5.0));
  p.observe(tm::TrafficMatrix{});  // flow went quiet
  EXPECT_EQ(p.tracked_flows(), 0u);
}

TEST(Predictor, EwmaDecaysQuietFlows) {
  tm::FlowPredictor p(tm::PredictorKind::kEwma, 0.5);
  p.observe(one_flow(8.0));
  p.observe(tm::TrafficMatrix{});
  EXPECT_EQ(p.tracked_flows(), 1u);
  EXPECT_NEAR(p.predict().total_demand_gbps(), 4.0, 1e-9);
}

TEST(Predictor, MapeZeroOnPerfectPrediction) {
  tm::FlowPredictor p(tm::PredictorKind::kLastValue);
  p.observe(one_flow(5.0));
  EXPECT_DOUBLE_EQ(p.mape(one_flow(5.0)), 0.0);
  EXPECT_NEAR(p.mape(one_flow(10.0)), 0.5, 1e-9);
}

TEST(Predictor, RejectsBadAlpha) {
  EXPECT_THROW(tm::FlowPredictor(tm::PredictorKind::kEwma, 0.0),
               std::invalid_argument);
  EXPECT_THROW(tm::FlowPredictor(tm::PredictorKind::kEwma, 1.5),
               std::invalid_argument);
}

TEST(Predictor, EwmaBeatsLastValueOnNoisySeries) {
  // demand_t = 10 * exp(noise): EWMA's error must be below last-value's.
  megate::util::Rng rng(5);
  tm::FlowPredictor ewma(tm::PredictorKind::kEwma, 0.3);
  tm::FlowPredictor last(tm::PredictorKind::kLastValue);
  double err_ewma = 0.0, err_last = 0.0;
  tm::TrafficMatrix prev = one_flow(10.0);
  ewma.observe(prev);
  last.observe(prev);
  for (int t = 0; t < 60; ++t) {
    tm::TrafficMatrix actual = one_flow(10.0 * rng.lognormal(0.0, 0.5));
    err_ewma += ewma.mape(actual);
    err_last += last.mape(actual);
    ewma.observe(actual);
    last.observe(actual);
  }
  EXPECT_LT(err_ewma, err_last);
}

// --- period simulation --------------------------------------------------

TEST(PeriodSim, OracleDominatesStale) {
  auto s = make_scenario(8, 14, 25, 0.5, 17);
  sim::PeriodSimOptions opt;
  opt.periods = 5;
  opt.seed = 3;
  auto stale = sim::run_period_simulation(s->graph, s->tunnels, s->traffic,
                                          sim::DemandKnowledge::kStale, opt);
  auto oracle = sim::run_period_simulation(
      s->graph, s->tunnels, s->traffic, sim::DemandKnowledge::kOracle, opt);
  ASSERT_EQ(stale.size(), 5u);
  ASSERT_EQ(oracle.size(), 5u);
  double stale_mean = 0, oracle_mean = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    // Demand evolution is seed-deterministic, so periods align exactly.
    EXPECT_NEAR(stale[i].actual_total_gbps, oracle[i].actual_total_gbps,
                1e-9);
    stale_mean += stale[i].realized_satisfied();
    oracle_mean += oracle[i].realized_satisfied();
  }
  EXPECT_GE(oracle_mean, stale_mean - 1e-6);
  for (const auto& o : oracle) EXPECT_DOUBLE_EQ(o.prediction_mape, 0.0);
  for (const auto& o : stale) EXPECT_GT(o.prediction_mape, 0.0);
}

TEST(PeriodSim, RealizedSatisfiedIsAFraction) {
  auto s = make_scenario(8, 14, 15, 0.4, 9);
  sim::PeriodSimOptions opt;
  opt.periods = 3;
  auto out = sim::run_period_simulation(s->graph, s->tunnels, s->traffic,
                                        sim::DemandKnowledge::kPredicted,
                                        opt);
  for (const auto& o : out) {
    EXPECT_GT(o.realized_satisfied(), 0.0);
    EXPECT_LE(o.realized_satisfied(), 1.0 + 1e-9);
  }
}

// --- clustered stage-1 ----------------------------------------------------

TEST(ClusteredSiteLp, NearJointObjective) {
  auto s = make_scenario(16, 28, 20, 0.4);
  auto demands = s->traffic.site_demands();
  auto joint =
      te::solve_max_site_flow(s->graph, s->tunnels, demands, {}, 0.02);
  auto contracted = te::solve_max_site_flow_clustered(
      s->graph, s->tunnels, demands, {}, 0.02, 3, {}, 1);
  ASSERT_EQ(contracted.status, lp::Status::kOptimal);
  EXPECT_LE(contracted.objective, joint.objective * (1.0 + 1e-6));
  EXPECT_GE(contracted.objective, 0.7 * joint.objective)
      << "static partitioning should cost a bounded share";
  // Merged allocations must respect the joint capacities.
  std::vector<double> usage(s->graph.num_links(), 0.0);
  for (const auto& [pair, alloc] : contracted.alloc) {
    const auto& ts = s->tunnels.tunnels(pair.src, pair.dst);
    for (std::size_t t = 0; t < alloc.size(); ++t) {
      for (topo::EdgeId e : ts[t].links) usage[e] += alloc[t];
    }
  }
  for (topo::EdgeId e = 0; e < s->graph.num_links(); ++e) {
    EXPECT_LE(usage[e],
              s->graph.link(e).capacity_gbps * (1.0 + 1e-6));
  }
}

TEST(ClusteredSiteLp, FallsBackBelowTwoClusters) {
  auto s = make_scenario(6, 10, 10, 0.3);
  auto demands = s->traffic.site_demands();
  auto a = te::solve_max_site_flow_clustered(s->graph, s->tunnels, demands,
                                             {}, 0.02, 1, {}, 1);
  auto b = te::solve_max_site_flow(s->graph, s->tunnels, demands, {}, 0.02);
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

TEST(MegaTe, ClusteredStage1StaysFeasibleAndClose) {
  auto s = make_scenario(16, 28, 30, 0.4);
  te::MegaTeSolver plain;
  te::MegaTeOptions copt;
  copt.stage1_clusters = 3;
  te::MegaTeSolver contracted(copt);
  auto sp = plain.solve(s->problem(), {}).solution;
  auto sc = contracted.solve(s->problem(), {}).solution;
  te::CheckOptions check;
  check.require_flow_assignment = true;
  EXPECT_TRUE(te::check_solution(s->problem(), sc, check).ok);
  EXPECT_GE(sc.satisfied_gbps, 0.8 * sp.satisfied_gbps);
}

// --- VTEP ingress -----------------------------------------------------------

TEST(VtepIngress, RoundTripsEgressEncapsulation) {
  using namespace dataplane;
  HostStack sender;
  sender.on_sys_enter_execve(1, 42);
  FiveTuple t;
  t.src_ip = make_overlay_ip(1, 7);
  t.dst_ip = make_overlay_ip(9, 3);
  t.proto = kProtoUdp;
  t.src_port = 1000;
  t.dst_port = 2000;
  sender.on_conntrack_event(t, 1);
  sender.install_route(42, 9, {4, 9});

  Buffer inner;
  EthernetHeader eth;
  eth.serialize(inner);
  Ipv4Header ip;
  ip.protocol = kProtoUdp;
  ip.src_ip = t.src_ip;
  ip.dst_ip = t.dst_ip;
  ip.total_length = kIpv4HeaderSize + kUdpHeaderSize + 16;
  ip.serialize(inner);
  UdpHeader udp;
  udp.src_port = t.src_port;
  udp.dst_port = t.dst_port;
  udp.length = kUdpHeaderSize + 16;
  udp.serialize(inner);
  inner.insert(inner.end(), 16, 0x77);

  auto egress = sender.tc_egress(inner, 0x0A090001);
  ASSERT_EQ(egress.action, TcVerdict::Action::kEncapsulated);

  HostStack receiver;
  auto in = receiver.vtep_ingress(egress.packet);
  ASSERT_EQ(in.action, HostStack::IngressResult::Action::kDecapsulated);
  EXPECT_TRUE(in.had_sr_header);
  EXPECT_EQ(in.inner, inner) << "inner frame must survive byte-for-byte";
}

TEST(VtepIngress, PassesNonVxlanTraffic) {
  using namespace dataplane;
  Buffer b;
  EthernetHeader eth;
  eth.serialize(b);
  Ipv4Header ip;
  ip.protocol = kProtoUdp;
  ip.total_length = kIpv4HeaderSize + kUdpHeaderSize;
  ip.serialize(b);
  UdpHeader udp;
  udp.dst_port = 53;
  udp.serialize(b);
  HostStack hs;
  EXPECT_EQ(hs.vtep_ingress(b).action,
            HostStack::IngressResult::Action::kNotVxlan);
}

TEST(VtepIngress, DropsTruncatedSr) {
  using namespace dataplane;
  // Build a VXLAN packet flagged as SR but without the SR header bytes.
  Buffer b;
  EthernetHeader eth;
  eth.serialize(b);
  Ipv4Header ip;
  ip.protocol = kProtoUdp;
  ip.total_length = static_cast<std::uint16_t>(
      kIpv4HeaderSize + kUdpHeaderSize + kVxlanHeaderSize);
  ip.serialize(b);
  UdpHeader udp;
  udp.dst_port = kVxlanPort;
  udp.length = kUdpHeaderSize + kVxlanHeaderSize;
  udp.serialize(b);
  VxlanHeader vx;
  vx.megate_sr = true;
  vx.serialize(b);
  HostStack hs;
  EXPECT_EQ(hs.vtep_ingress(b).action,
            HostStack::IngressResult::Action::kDropMalformed);
}

}  // namespace
}  // namespace megate
