// Tests for megate::ctrl — the sharded KV store, controller publication,
// endpoint agents (bottom-up pull loop), the §6.4 sync cost model and the
// persistent-connection pressure simulation.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "megate/ctrl/agent.h"
#include "megate/ctrl/connection_manager.h"
#include "megate/ctrl/controller.h"
#include "megate/ctrl/kvstore.h"
#include "megate/ctrl/sync_model.h"
#include "megate/te/megate_solver.h"
#include "megate/util/stats.h"
#include "test_helpers.h"

namespace megate::ctrl {
namespace {

// --- KvStore ---------------------------------------------------------------

TEST(KvStore, PutGetErase) {
  KvStore kv(2);
  kv.put("a", "1");
  const GetResult hit = kv.try_get("a");
  EXPECT_EQ(hit.status, GetStatus::kOk);
  EXPECT_EQ(hit.value, "1");
  EXPECT_EQ(kv.try_get("missing").status, GetStatus::kMiss);
  kv.put("a", "2");
  EXPECT_EQ(kv.try_get("a").value, "2");
  EXPECT_TRUE(kv.erase("a"));
  EXPECT_FALSE(kv.erase("a"));
  EXPECT_EQ(kv.size(), 0u);
}

TEST(KvStore, PublishBumpsVersionAtomically) {
  KvStore kv(2);
  EXPECT_EQ(kv.version(), 0u);
  const Version v1 = kv.publish({{"x", "1"}, {"y", "2"}});
  EXPECT_EQ(v1, 1u);
  EXPECT_EQ(kv.version(), 1u);
  EXPECT_EQ(kv.try_get("x").value, "1");
  // The GetResult's version stamps the snapshot the read observed.
  EXPECT_GE(kv.try_get("x").version, v1);
  const Version v2 = kv.publish({{"x", "3"}});
  EXPECT_EQ(v2, 2u);
  EXPECT_EQ(kv.try_get("x").value, "3");
  EXPECT_EQ(kv.try_get("y").value, "2");
}

TEST(KvStore, RejectsZeroShards) {
  EXPECT_THROW(KvStore(0), std::invalid_argument);
}

TEST(KvStore, CountsQueries) {
  KvStore kv(2);
  kv.put("k", "v");
  const auto before = kv.query_count();
  (void)kv.try_get("k");
  (void)kv.try_get("k");
  (void)kv.try_get("nope");
  EXPECT_EQ(kv.query_count(), before + 3);
}

TEST(KvStore, KeysSpreadAcrossShards) {
  KvStore kv(4);
  for (int i = 0; i < 100; ++i) kv.put("key" + std::to_string(i), "v");
  EXPECT_EQ(kv.size(), 100u);
}

TEST(KvStore, ConcurrentReadersAndWriters) {
  KvStore kv(4);
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&kv, w] {
      for (int i = 0; i < 500; ++i) {
        kv.put("k" + std::to_string(w) + "/" + std::to_string(i), "v");
        (void)kv.try_get("k0/" + std::to_string(i % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(kv.size(), 4u * 500u);
}

// --- controller encode/decode ---------------------------------------------

TEST(Controller, HopCodecRoundTrip) {
  const std::vector<std::uint32_t> hops{1, 22, 333, 4444};
  EXPECT_EQ(decode_hops(encode_hops(hops)), hops);
  EXPECT_TRUE(decode_hops("").empty());
  EXPECT_TRUE(encode_hops({}).empty());
}

TEST(Controller, DecodeToleratesMalformedTail) {
  EXPECT_EQ(decode_hops("1,2,junk"), (std::vector<std::uint32_t>{1, 2}));
}

TEST(Controller, RouteCodecRoundTrip) {
  std::vector<RouteEntry> routes;
  routes.push_back({7, {1, 2, 3}});
  routes.push_back({dataplane::kAnyDstSite, {9}});
  EXPECT_EQ(decode_routes(encode_routes(routes)), routes);
  EXPECT_TRUE(decode_routes("").empty());
}

TEST(Controller, RouteCodecSkipsMalformedEntries) {
  auto routes = decode_routes("5:1,2|garbage|8:3");
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes[0].dst_site, 5u);
  EXPECT_EQ(routes[1].dst_site, 8u);
  EXPECT_EQ(routes[1].hops, (std::vector<std::uint32_t>{3}));
}

TEST(Controller, PublishPathStoresEntry) {
  KvStore kv(2);
  Controller ctrl(&kv);
  const Version v = ctrl.publish_path(42, {7, 8});
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(kv.try_get(path_key(42)).value, "*:7,8");
  EXPECT_EQ(ctrl.entries_published(), 1u);
}

TEST(Controller, PublishSolutionWritesPerSourceInstance) {
  auto s = megate::testing::make_scenario(6, 10, 10, 0.2);
  te::MegaTeSolver solver;
  te::TeSolution sol = solver.solve(s->problem(), {}).solution;
  KvStore kv(2);
  Controller ctrl(&kv);
  ctrl.publish_solution(s->problem(), sol);
  EXPECT_EQ(kv.version(), 1u);
  EXPECT_GT(ctrl.entries_published(), 0u);
  // Every assigned flow's source instance must have a route-table entry
  // for the flow's destination site whose hop list ends at that site.
  std::size_t verified = 0;
  for (const auto& [pair, alloc] : sol.pairs) {
    auto it = s->traffic.pairs().find(pair);
    if (it == s->traffic.pairs().end()) continue;
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (alloc.flow_tunnel[i] < 0) continue;
      const GetResult entry = kv.try_get(path_key(it->second[i].src));
      ASSERT_TRUE(entry.ok());
      auto routes = decode_routes(entry.value);
      auto match = std::find_if(routes.begin(), routes.end(),
                                [&](const RouteEntry& r) {
                                  return r.dst_site == pair.dst;
                                });
      ASSERT_NE(match, routes.end());
      ASSERT_FALSE(match->hops.empty());
      EXPECT_EQ(match->hops.back(), pair.dst);
      ++verified;
    }
  }
  EXPECT_GT(verified, 0u);
}

// --- endpoint agent ---------------------------------------------------------

TEST(Agent, PullsOnVersionChange) {
  KvStore kv(2);
  AgentOptions opt;
  opt.poll_interval_s = 1.0;
  opt.spread_interval_s = 1.0;
  EndpointAgent agent(5, &kv, nullptr, opt);
  agent.tick(0.5);  // before any publish: nothing to apply
  EXPECT_EQ(agent.applied_version(), 0u);
  kv.publish({{path_key(5), "*:1,2,3"}});
  agent.tick(3.0);
  EXPECT_EQ(agent.applied_version(), 1u);
  EXPECT_EQ(agent.hops_for(99), (std::vector<std::uint32_t>{1, 2, 3}))
      << "wildcard route applies to every destination site";
}

TEST(Agent, InstallsIntoHostStack) {
  KvStore kv(2);
  dataplane::HostStack stack;
  stack.on_sys_enter_execve(1, 5);
  dataplane::FiveTuple t;
  t.src_ip = 1;
  t.dst_ip = 2;
  t.proto = dataplane::kProtoUdp;
  t.src_port = 100;
  t.dst_port = 200;
  stack.on_conntrack_event(t, 1);

  AgentOptions opt;
  opt.poll_interval_s = 1.0;
  EndpointAgent agent(5, &kv, &stack, opt);
  kv.publish({{path_key(5), "*:9,10"}});
  agent.tick(5.0);
  // The stack now encapsulates this instance's packets with SR.
  dataplane::Buffer frame;
  dataplane::EthernetHeader eth;
  eth.serialize(frame);
  dataplane::Ipv4Header ip;
  ip.protocol = dataplane::kProtoUdp;
  ip.src_ip = 1;
  ip.dst_ip = 2;
  ip.total_length = dataplane::kIpv4HeaderSize + dataplane::kUdpHeaderSize;
  ip.serialize(frame);
  dataplane::UdpHeader udp;
  udp.src_port = 100;
  udp.dst_port = 200;
  udp.serialize(frame);
  auto v = stack.tc_egress(frame, 0xFF);
  EXPECT_EQ(v.action, dataplane::TcVerdict::Action::kEncapsulated);
}

TEST(Agent, PollCountTracksInterval) {
  KvStore kv(2);
  AgentOptions opt;
  opt.poll_interval_s = 2.0;
  opt.spread_interval_s = 2.0;
  EndpointAgent agent(3, &kv, nullptr, opt);
  agent.tick(10.0);
  // phase in [0,2) then every 2 s until 10 -> 5 or 6 polls.
  EXPECT_GE(agent.polls(), 5u);
  EXPECT_LE(agent.polls(), 6u);
}

TEST(Agent, SyncLagsBoundedByPollInterval) {
  KvStore kv(2);
  AgentOptions opt;
  opt.poll_interval_s = 10.0;
  opt.spread_interval_s = 10.0;
  auto lags = measure_sync_lags(kv, 500, opt, /*publish_at=*/30.0,
                                /*horizon=*/60.0, /*step=*/0.25);
  ASSERT_EQ(lags.size(), 500u);
  for (double lag : lags) {
    EXPECT_GE(lag, -0.26);  // tick quantization
    EXPECT_LE(lag, opt.poll_interval_s + 0.26)
        << "eventual consistency within one poll interval";
  }
  // Spreading: lags should cover the interval, not cluster at one point.
  const double spread = util::percentile(lags, 95) -
                        util::percentile(lags, 5);
  EXPECT_GT(spread, 0.5 * opt.poll_interval_s);
}

// --- sync cost model ---------------------------------------------------------

TEST(SyncModel, MatchesPaperPressureTest) {
  SyncCostModel m;
  // Fig. 13 anchor: 6,000 connections -> 90% CPU, 750 MB.
  EXPECT_NEAR(m.top_down_cpu_percent(6000), 90.0, 1e-9);
  EXPECT_NEAR(m.top_down_memory_mb(6000), 750.0, 1e-9);
}

TEST(SyncModel, MatchesPaperMillionEndpointFigures) {
  SyncCostModel m;
  // Fig. 14 anchor: 1M endpoints -> >= 167 cores, ~125 GB.
  const SyncResources r = m.top_down(1'000'000);
  EXPECT_NEAR(r.cpu_cores, 167.0, 1.0);
  EXPECT_NEAR(r.memory_gb, 122.0, 3.0);
  const SyncResources b = m.bottom_up(1'000'000);
  EXPECT_DOUBLE_EQ(b.cpu_cores, 1.0);
  EXPECT_DOUBLE_EQ(b.memory_gb, 1.0);
  EXPECT_EQ(b.db_shards, 2u);  // 100k QPS over two 80k shards
}

TEST(SyncModel, SmallFleetsFitOneCore) {
  SyncCostModel m;
  const SyncResources r = m.top_down(1000);
  EXPECT_DOUBLE_EQ(r.cpu_cores, 1.0);
  EXPECT_LE(r.memory_gb, 0.25);
}

TEST(SyncModel, MonotoneInEndpoints) {
  SyncCostModel m;
  double prev_cores = 0.0;
  for (std::uint64_t n : {1000ull, 10000ull, 100000ull, 1000000ull}) {
    const SyncResources r = m.top_down(n);
    EXPECT_GE(r.cpu_cores, prev_cores);
    prev_cores = r.cpu_cores;
  }
}

// --- connection manager pressure sim ------------------------------------

TEST(ConnectionManager, CalibratedCpuAtSixThousand) {
  ConnectionManager cm;
  cm.connect(6000);
  cm.run(100.0);
  EXPECT_NEAR(cm.cpu_utilization(), 0.90, 1e-9);
  EXPECT_NEAR(cm.memory_mb(), 750.0, 1e-6);
}

TEST(ConnectionManager, ScalesLinearly) {
  ConnectionManager cm;
  cm.connect(3000);
  cm.run(50.0);
  EXPECT_NEAR(cm.cpu_utilization(), 0.45, 1e-9);
}

TEST(ConnectionManager, PushAddsWork) {
  ConnectionManager a, b;
  a.connect(1000);
  b.connect(1000);
  a.run(10.0);
  b.run(10.0);
  b.push_config_all();
  EXPECT_GT(b.cpu_utilization(), a.cpu_utilization());
}

TEST(ConnectionManager, DisconnectClamps) {
  ConnectionManager cm;
  cm.connect(10);
  cm.disconnect(100);
  EXPECT_EQ(cm.connections(), 0u);
}

}  // namespace
}  // namespace megate::ctrl
