// Differential testing of the data-parallel stage-1 packing solver
// (ISSUE 7 tentpole): lp::PackingSolver::solve must be BIT-IDENTICAL to
// lp::PackingSolver::solve_reference — the retained pre-batching scalar
// loop — for every thread count, every run, and every pool configuration.
//
//   1. Equivalence: ~100 seeded random packing LPs (including degenerate
//      features: zero-capacity rows, non-positive profits, single-entry
//      columns), each solved by the serial reference and by the batched
//      solver at threads {1, 2, 4, 8}, with an external caller pool, and
//      twice at the same thread count. Any bitwise difference in x,
//      objective, iterations, status or the dual bound is a failure; the
//      harness then shrinks the instance and reports the smallest
//      still-failing config with its exact seed.
//
//   2. Warm-start parity: a multi-interval te::MegaTeSolver run on the
//      packing backend (cold + incremental solves over evolving traffic)
//      must produce bitwise-equal TeSolutions whether stage 1 runs on the
//      serial reference or the batched kernels at 8 threads. This is what
//      keeps the PR-5 stage-2 memo (keyed on bitwise F_{k,t} hashes)
//      valid across deployments with different core counts.
//
//   3. Chaos parity: the PR-1 chaos fingerprint is invariant under the
//      stage-1 backend (reference vs batched) and across repeated runs.
//
// Why bit-identical and not "close": see DESIGN.md §12.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "megate/fault/chaos.h"
#include "megate/lp/model.h"
#include "megate/lp/packing.h"
#include "megate/te/megate_solver.h"
#include "megate/tm/traffic.h"
#include "megate/util/rng.h"
#include "megate/util/thread_pool.h"
#include "test_helpers.h"

namespace megate {
namespace {

/// Bitwise double equality: distinguishes -0.0 from 0.0 and is exact —
/// "close" is not good enough when downstream caches key on these bits.
bool bits_equal(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

std::string hex_pair(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.17g (0x%016llx) vs %.17g (0x%016llx)",
                a, static_cast<unsigned long long>(ba), b,
                static_cast<unsigned long long>(bb));
  return buf;
}

/// First bitwise difference between a candidate solve and the reference,
/// or nullopt when they agree exactly.
std::optional<std::string> diff_solutions(const lp::Solution& ref,
                                          double ref_dual,
                                          const lp::Solution& got,
                                          double got_dual,
                                          const std::string& label) {
  if (ref.status != got.status) {
    return label + ": status " + lp::to_string(got.status) + " vs " +
           lp::to_string(ref.status);
  }
  if (ref.iterations != got.iterations) {
    return label + ": iterations " + std::to_string(got.iterations) +
           " vs " + std::to_string(ref.iterations);
  }
  if (!bits_equal(ref.objective, got.objective)) {
    return label + ": objective " + hex_pair(got.objective, ref.objective);
  }
  if (!bits_equal(ref_dual, got_dual)) {
    return label + ": dual bound " + hex_pair(got_dual, ref_dual);
  }
  if (ref.x.size() != got.x.size()) {
    return label + ": x size " + std::to_string(got.x.size()) + " vs " +
           std::to_string(ref.x.size());
  }
  for (std::size_t j = 0; j < ref.x.size(); ++j) {
    if (!bits_equal(ref.x[j], got.x[j])) {
      return label + ": x[" + std::to_string(j) + "] " +
             hex_pair(got.x[j], ref.x[j]);
    }
  }
  return std::nullopt;
}

// --- 1. Random-LP differential sweep ---------------------------------------

struct CaseConfig {
  std::uint64_t seed = 0;
  int rows = 0;
  int cols = 0;
  int max_entries = 0;    ///< nonzeros per column, 1..max
  double epsilon = 0.1;
  bool zero_cap_row = false;   ///< include a 0-rhs row some columns touch
  bool neg_profit_cols = false;  ///< sprinkle non-positive-profit columns

  std::string describe() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "Case{seed=%llu, rows=%d, cols=%d, max_entries=%d, "
                  "eps=%.2f, zero_cap=%d, neg_profit=%d}",
                  static_cast<unsigned long long>(seed), rows, cols,
                  max_entries, epsilon, zero_cap_row ? 1 : 0,
                  neg_profit_cols ? 1 : 0);
    return buf;
  }
};

CaseConfig random_case(std::uint64_t seed) {
  util::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 23);
  CaseConfig c;
  c.seed = seed;
  c.rows = 2 + static_cast<int>(rng.uniform_int(0, 38));
  c.cols = 1 + static_cast<int>(rng.uniform_int(0, 299));
  c.max_entries = 1 + static_cast<int>(rng.uniform_int(0, 4));
  const double eps_grid[] = {0.05, 0.07, 0.1, 0.2, 0.3};
  c.epsilon = eps_grid[rng.uniform_int(0, 4)];
  c.zero_cap_row = rng.uniform() < 0.25;
  c.neg_profit_cols = rng.uniform() < 0.25;
  return c;
}

lp::Model build_model(const CaseConfig& c) {
  util::Rng rng(c.seed * 1000003ULL + 7);
  lp::Model m;
  std::vector<std::size_t> rows;
  for (int i = 0; i < c.rows; ++i) {
    rows.push_back(m.add_constraint(rng.uniform(1.0, 80.0)));
  }
  std::size_t dead_row = ~std::size_t{0};
  if (c.zero_cap_row) dead_row = m.add_constraint(0.0);
  for (int j = 0; j < c.cols; ++j) {
    double profit = rng.uniform(0.2, 3.0);
    if (c.neg_profit_cols && rng.uniform() < 0.15) {
      profit = -profit;  // skipped by both paths, pins x_j = 0
    }
    const auto x = m.add_variable(profit);
    const int k =
        1 + static_cast<int>(rng.uniform_int(0, c.max_entries - 1));
    for (int t = 0; t < k; ++t) {
      // Duplicates accumulate in the model; both solve paths see the
      // already-merged column, so this also covers the dedup path.
      m.add_coefficient(rows[rng.uniform_int(0, rows.size() - 1)], x,
                        rng.uniform(0.2, 2.0));
    }
    if (dead_row != ~std::size_t{0} && rng.uniform() < 0.1) {
      m.add_coefficient(dead_row, x, 1.0);  // column becomes dead
    }
  }
  return m;
}

/// Runs one case: serial reference vs the batched solver across thread
/// counts, repeats and an external pool. Returns the first mismatch.
std::optional<std::string> run_case(const CaseConfig& c) {
  const lp::Model m = build_model(c);

  lp::PackingOptions base;
  base.epsilon = c.epsilon;
  lp::PackingSolver ref_solver(base);
  const lp::Solution ref = ref_solver.solve_reference(m);
  const double ref_dual = ref_solver.last_dual_bound();

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    lp::PackingOptions opt = base;
    opt.threads = threads;
    lp::PackingSolver solver(opt);
    const lp::Solution got = solver.solve(m);
    if (auto d = diff_solutions(ref, ref_dual, got, solver.last_dual_bound(),
                                "threads=" + std::to_string(threads))) {
      return d;
    }
  }

  // Same thread count twice: scheduling noise must not leak into results.
  {
    lp::PackingOptions opt = base;
    opt.threads = 8;
    lp::PackingSolver solver(opt);
    const lp::Solution again = solver.solve(m);
    if (auto d = diff_solutions(ref, ref_dual, again,
                                solver.last_dual_bound(),
                                "threads=8 repeat")) {
      return d;
    }
  }

  // Caller-provided pool (the te::MegaTeSolver configuration), with a
  // worker count not in the sweep above.
  {
    util::ThreadPool pool(3);
    lp::PackingSolver solver(base);
    const lp::Solution got = solver.solve(m, &pool);
    if (auto d = diff_solutions(ref, ref_dual, got, solver.last_dual_bound(),
                                "external pool(3)")) {
      return d;
    }
  }
  return std::nullopt;
}

/// Shrinks a failing case: repeatedly halves columns/rows/entries while
/// the failure reproduces, so the report points at a minimal instance.
CaseConfig shrink(CaseConfig c) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (int dim = 0; dim < 4; ++dim) {
      CaseConfig smaller = c;
      switch (dim) {
        case 0: smaller.cols = c.cols / 2; break;
        case 1: smaller.rows = c.rows / 2; break;
        case 2: smaller.max_entries = c.max_entries / 2; break;
        case 3:
          smaller.zero_cap_row = false;
          smaller.neg_profit_cols = false;
          break;
      }
      if (smaller.cols < 1 || smaller.rows < 1 || smaller.max_entries < 1) {
        continue;
      }
      if (smaller.cols == c.cols && smaller.rows == c.rows &&
          smaller.max_entries == c.max_entries &&
          smaller.zero_cap_row == c.zero_cap_row &&
          smaller.neg_profit_cols == c.neg_profit_cols) {
        continue;
      }
      if (run_case(smaller).has_value()) {
        c = smaller;
        progress = true;
      }
    }
  }
  return c;
}

TEST(Stage1Differential, ParallelBitIdenticalToSerialAcross100Seeds) {
  int failures = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const CaseConfig c = random_case(seed);
    const auto violation = run_case(c);
    if (!violation) continue;
    const CaseConfig minimal = shrink(c);
    const auto min_violation = run_case(minimal);
    ADD_FAILURE() << c.describe() << ": " << *violation
                  << "\n  shrunk to " << minimal.describe() << ": "
                  << (min_violation ? *min_violation : "(no longer fails)");
    if (++failures >= 3) {
      GTEST_FAIL() << "stopping after 3 failing seeds";
    }
  }
}

TEST(Stage1Differential, HardwareThreadCountAlsoBitIdentical) {
  // threads = 0 resolves to hardware concurrency — whatever this machine
  // has must not change the answer either.
  const CaseConfig c = random_case(4242);
  const lp::Model m = build_model(c);
  lp::PackingOptions opt;
  opt.epsilon = c.epsilon;
  lp::PackingSolver ref_solver(opt);
  const lp::Solution ref = ref_solver.solve_reference(m);
  opt.threads = 0;
  lp::PackingSolver solver(opt);
  const lp::Solution got = solver.solve(m);
  const auto d = diff_solutions(ref, ref_solver.last_dual_bound(), got,
                                solver.last_dual_bound(), "threads=0");
  EXPECT_FALSE(d.has_value()) << *d;
}

// --- 2. te::MegaTeSolver warm-start parity ---------------------------------

/// Evolves a traffic matrix by one interval (seeded per flow, independent
/// of container iteration order) — same idiom as incremental_test.cpp.
tm::TrafficMatrix evolve_traffic(const tm::TrafficMatrix& prev, double churn,
                                 std::uint64_t seed) {
  tm::TrafficMatrix out;
  for (const auto& [pair, flows] : prev.pairs()) {
    for (std::size_t i = 0; i < flows.size(); ++i) {
      tm::EndpointDemand d = flows[i];
      util::Rng rng(seed ^ (d.src * 0x9E3779B97F4A7C15ULL) ^
                    (d.dst * 0xBF58476D1CE4E5B9ULL) ^ i);
      if (rng.uniform() < churn) {
        d.demand_gbps *= 0.5 + rng.uniform();
      }
      out.add(d);
    }
  }
  return out;
}

std::optional<std::string> diff_te_solutions(const te::TeSolution& a,
                                             const te::TeSolution& b) {
  if (!bits_equal(a.satisfied_gbps, b.satisfied_gbps)) {
    return "satisfied_gbps " + hex_pair(b.satisfied_gbps, a.satisfied_gbps);
  }
  if (a.pairs.size() != b.pairs.size()) {
    return "pair count " + std::to_string(b.pairs.size()) + " vs " +
           std::to_string(a.pairs.size());
  }
  for (const auto& [pair, alloc] : a.pairs) {
    const auto it = b.pairs.find(pair);
    if (it == b.pairs.end()) {
      return "pair (" + std::to_string(pair.src) + "," +
             std::to_string(pair.dst) + ") missing";
    }
    if (alloc.tunnel_alloc.size() != it->second.tunnel_alloc.size()) {
      return "tunnel_alloc size mismatch";
    }
    for (std::size_t t = 0; t < alloc.tunnel_alloc.size(); ++t) {
      if (!bits_equal(alloc.tunnel_alloc[t], it->second.tunnel_alloc[t])) {
        return "F_{k,t} " +
               hex_pair(it->second.tunnel_alloc[t], alloc.tunnel_alloc[t]);
      }
    }
    if (alloc.flow_tunnel != it->second.flow_tunnel) {
      return "flow_tunnel assignment mismatch";
    }
  }
  return std::nullopt;
}

TEST(Stage1Parallel, IncrementalWarmStartParityAcrossBackends) {
  // Cold solve + incremental resolves over evolving traffic: the serial
  // reference backend at 1 thread and the batched backend at 8 threads
  // must agree bitwise on every interval's full solution. The batched
  // side exercises solve_incremental's stage-1 path including the
  // F_{k,t}-keyed stage-2 memo (PR 5), which only stays coherent because
  // stage 1 is bit-deterministic.
  auto s = testing::make_scenario(12, 20, 3, 0.3, 7);

  te::MegaTeOptions serial_opt;
  serial_opt.threads = 1;
  serial_opt.site_lp.backend = te::SiteLpOptions::Backend::kPackingReference;
  te::MegaTeSolver serial_solver(serial_opt);

  te::MegaTeOptions par_opt;
  par_opt.threads = 8;
  par_opt.site_lp.backend = te::SiteLpOptions::Backend::kPacking;
  par_opt.site_lp.packing_threads = 8;
  te::MegaTeSolver par_solver(par_opt);

  tm::TrafficMatrix current = s->traffic;
  for (std::size_t interval = 0; interval < 4; ++interval) {
    if (interval > 0) {
      current = evolve_traffic(current, 0.15, 1000003ULL * interval + 5);
    }
    te::TeProblem problem = s->problem();
    problem.traffic = &current;
    te::SolveContext ctx;
    ctx.incremental = interval > 0;
    const te::SolveReport a = serial_solver.solve(problem, ctx);
    const te::SolveReport b = par_solver.solve(problem, ctx);
    const auto d = diff_te_solutions(a.solution, b.solution);
    EXPECT_FALSE(d.has_value())
        << "interval " << interval << ": " << *d;
    if (d) break;
  }
}

// --- 3. Chaos fingerprint parity -------------------------------------------

fault::ChaosOptions chaos_base() {
  fault::ChaosOptions o;
  o.sites = 8;
  o.duplex_links = 12;
  o.endpoints_per_site = 2;
  o.intervals = 8;
  o.interval_s = 15.0;
  o.poll_interval_s = 4.0;
  o.kv_shards = 2;
  o.plan.seed = 21;
  o.plan.horizon_s = 0.0;  // auto-size to intervals * interval_s
  o.plan.quiet_tail_s = 45.0;
  o.plan.shard_crashes = 2;
  o.plan.link_failures = 1;
  o.plan.pull_drop_windows = 1;
  o.plan.stale_windows = 1;
  // Force stage 1 onto the packing solver (small chaos topologies would
  // otherwise auto-pick the simplex and never touch the batched kernels).
  o.site_lp.backend = te::SiteLpOptions::Backend::kPacking;
  o.site_lp.packing_threads = 8;
  return o;
}

TEST(Stage1Parallel, ChaosFingerprintInvariantAcrossBackends) {
  fault::ChaosOptions par = chaos_base();
  const fault::ChaosReport a = fault::run_chaos(par);
  EXPECT_TRUE(a.ok()) << (a.violations.empty() ? "did not converge"
                                               : a.violations.front());

  // Same loop, stage 1 on the serial reference: same routes, same events,
  // same fingerprint — the one-line statement that the batched solver
  // changed nothing observable.
  fault::ChaosOptions ser = chaos_base();
  ser.site_lp.backend = te::SiteLpOptions::Backend::kPackingReference;
  ser.site_lp.packing_threads = 1;
  const fault::ChaosReport b = fault::run_chaos(ser);
  EXPECT_EQ(a.fingerprint, b.fingerprint);

  // And repeated runs of the parallel configuration are bit-stable.
  const fault::ChaosReport again = fault::run_chaos(par);
  EXPECT_EQ(a.fingerprint, again.fingerprint);
}

}  // namespace
}  // namespace megate
