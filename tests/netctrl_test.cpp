// Multi-process control-plane tests (PR 6 tentpole): real megate_shardd
// and megate_agentd child processes on loopback TCP, driven through the
// same chaos harness and property suites as the in-process transport.
//
//   - kill/restart mid-publish with snapshot (redo-log analog) replay;
//   - chaos fingerprint parity: the same seeded FaultPlan produces a
//     bit-identical report over {in-process, TCP+admin, TCP+SIGKILL,
//     TCP+SIGSTOP} shard-fault seams;
//   - transport-differential batched-pull suite: identical sync-lag
//     distributions and KV version cuts over {in-process, TCP};
//   - the 2-shard + 4-agent acceptance topology surviving a seeded shard
//     kill/restart and a network partition (SIGSTOP).
//
// The shardd/agentd binaries are located relative to the test binary
// (build*/tests/.. -> build*/tools); MEGATE_SHARDD_BIN and
// MEGATE_AGENTD_BIN override.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "megate/ctrl/agent.h"
#include "megate/ctrl/controller.h"
#include "megate/ctrl/kvstore.h"
#include "megate/ctrl/transport.h"
#include "megate/fault/chaos.h"
#include "megate/fault/process.h"
#include "megate/net/tcp_transport.h"
#include "megate/obs/json.h"

namespace megate {
namespace {

using ctrl::GetStatus;

// --- binary discovery -------------------------------------------------------

std::string self_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  const std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

std::string tool_path(const char* env_override, const char* name) {
  if (const char* p = std::getenv(env_override); p != nullptr && *p != '\0') {
    return p;
  }
  return self_dir() + "/../tools/" + name;
}

std::string shardd_path() {
  return tool_path("MEGATE_SHARDD_BIN", "megate_shardd");
}
std::string agentd_path() {
  return tool_path("MEGATE_AGENTD_BIN", "megate_agentd");
}

bool executable_exists(const std::string& path) {
  return ::access(path.c_str(), X_OK) == 0;
}

#define REQUIRE_DAEMON(path_expr)                                          \
  do {                                                                     \
    if (!executable_exists(path_expr)) {                                   \
      GTEST_SKIP() << "daemon binary not built: " << (path_expr);          \
    }                                                                      \
  } while (0)

// --- child helpers ----------------------------------------------------------

struct Shardd {
  fault::ChildProcess proc;
  std::uint16_t port = 0;
};

bool spawn_shardd(std::uint16_t port, bool recover, int idx, Shardd* out) {
  std::vector<std::string> args = {"--port", std::to_string(port), "--name",
                                   "shardd" + std::to_string(idx)};
  if (recover) args.push_back("--recover");
  if (!out->proc.spawn(shardd_path(), args)) return false;
  std::string line;
  if (!out->proc.read_line(&line, 15000)) return false;
  constexpr const char kTag[] = "LISTENING ";
  if (line.rfind(kTag, 0) != 0) return false;
  const unsigned long parsed = std::stoul(line.substr(sizeof(kTag) - 1));
  if (parsed == 0 || parsed > 0xFFFF) return false;
  out->port = static_cast<std::uint16_t>(parsed);
  return true;
}

net::TcpTransportOptions controller_options(
    const std::vector<std::uint16_t>& ports) {
  net::TcpTransportOptions o;
  o.ports = ports;
  o.peer_name = "netctrl-test";
  o.request_timeout_ms = 5000;  // sanitizer headroom
  o.backoff_initial_ms = 10;
  return o;
}

// --- process-level kill / restart ------------------------------------------

TEST(NetctrlProcessTest, KillRestartMidPublishReplaysStateOverSnapshot) {
  REQUIRE_DAEMON(shardd_path());
  Shardd s0, s1;
  ASSERT_TRUE(spawn_shardd(0, false, 0, &s0));
  ASSERT_TRUE(spawn_shardd(0, false, 1, &s1));

  net::TcpKvTransport db(controller_options({s0.port, s1.port}));

  std::vector<std::string> keys;
  std::vector<std::pair<std::string, std::string>> batch;
  for (int i = 0; i < 24; ++i) {
    keys.push_back(ctrl::path_key(static_cast<std::uint64_t>(i)));
    batch.emplace_back(keys.back(), "v1-" + std::to_string(i));
  }
  ASSERT_EQ(db.publish(batch), 1u);

  // SIGKILL shard 0 mid-sequence; publishes keep flowing (shard 0's
  // share lives only in the controller mirror until the resync).
  db.set_reachable(0, false);
  s0.proc.terminate();
  ctrl::KvDelta d2, d3;
  for (int i = 0; i < 24; ++i) d2.upserts.emplace_back(keys[i], "v2-" + std::to_string(i));
  for (int i = 0; i < 12; ++i) d3.upserts.emplace_back(keys[i], "v3-" + std::to_string(i));
  ASSERT_EQ(db.publish_delta(d2), 2u);
  ASSERT_EQ(db.publish_delta(d3), 3u);

  // Restart empty on the same port in recovery mode. Before the resync,
  // an agent sees shard 0's keys as unavailable — the --recover flag
  // closes the stale-read window a restarted-empty server would open.
  Shardd fresh;
  ASSERT_TRUE(spawn_shardd(s0.port, /*recover=*/true, 0, &fresh));
  net::TcpTransportOptions agent_opts = controller_options({fresh.port, s1.port});
  agent_opts.role = net::HelloMsg::kRoleAgent;
  agent_opts.peer_name = "probe-agent";
  net::TcpKvTransport probe(agent_opts);
  bool saw_unavailable = false;
  for (const std::string& k : keys) {
    if (db.shard_index(k) != 0) continue;
    EXPECT_EQ(probe.get(k).status, GetStatus::kUnavailable) << k;
    saw_unavailable = true;
  }
  EXPECT_TRUE(saw_unavailable);  // some keys hash to shard 0

  // Snapshot resync replays everything the dead server missed.
  ASSERT_TRUE(db.resync_shard(0));
  const ctrl::MultiGetResult r = db.multi_get(keys);
  EXPECT_TRUE(r.all_available());
  EXPECT_EQ(r.version, 3u);
  for (int i = 0; i < 24; ++i) {
    const std::string want =
        (i < 12 ? "v3-" : "v2-") + std::to_string(i);
    EXPECT_EQ(r.entries[i].value, want) << keys[i];
  }
  // The fresh agent-side view converges to the same cut.
  EXPECT_EQ(probe.version(), 3u);
  const ctrl::MultiGetResult ra = probe.multi_get(keys);
  EXPECT_TRUE(ra.all_available());
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(ra.entries[i].value, r.entries[i].value) << keys[i];
  }
}

// --- chaos fingerprint parity across transports -----------------------------

fault::ChaosOptions tcp_chaos_base() {
  fault::ChaosOptions o;
  o.sites = 8;
  o.duplex_links = 12;
  o.endpoints_per_site = 2;
  o.intervals = 6;
  o.interval_s = 15.0;
  o.poll_interval_s = 4.0;
  o.instances_per_agent = 3;
  o.kv_shards = 2;  // two child processes per TCP run
  o.plan.seed = 21;
  o.plan.horizon_s = 0.0;
  o.plan.quiet_tail_s = 45.0;
  o.plan.shard_crashes = 0;
  o.plan.link_failures = 0;
  o.plan.pull_drop_windows = 0;
  o.plan.stale_windows = 0;
  return o;
}

void expect_transport_parity(const fault::ChaosOptions& base,
                             fault::ShardFaultMode mode, const char* tag) {
  const fault::ChaosReport inproc = fault::run_chaos(base);
  fault::ChaosOptions over_tcp = base;
  over_tcp.transport = fault::ChaosTransportMode::kTcp;
  over_tcp.shard_fault_mode = mode;
  over_tcp.shardd_binary = shardd_path();
  const fault::ChaosReport tcp = fault::run_chaos(over_tcp);

  EXPECT_EQ(inproc.fingerprint, tcp.fingerprint) << tag;
  EXPECT_EQ(inproc.event_log, tcp.event_log) << tag;
  EXPECT_EQ(inproc.churn_log, tcp.churn_log) << tag;
  EXPECT_EQ(inproc.violations, tcp.violations) << tag;
  EXPECT_EQ(inproc.final_version, tcp.final_version) << tag;
  EXPECT_EQ(inproc.convergence_intervals_used,
            tcp.convergence_intervals_used)
      << tag;
  EXPECT_TRUE(tcp.ok()) << tag;
}

TEST(ChaosTransportParityTest, FaultFreeRunFingerprintsIdentically) {
  REQUIRE_DAEMON(shardd_path());
  expect_transport_parity(tcp_chaos_base(), fault::ShardFaultMode::kAdmin,
                          "fault-free/admin");
}

TEST(ChaosTransportParityTest, ShardCrashesViaAdminSeam) {
  REQUIRE_DAEMON(shardd_path());
  fault::ChaosOptions o = tcp_chaos_base();
  o.plan.shard_crashes = 2;
  expect_transport_parity(o, fault::ShardFaultMode::kAdmin,
                          "shard-crashes/admin");
}

TEST(ChaosTransportParityTest, ShardCrashesViaRealProcessKillRestart) {
  REQUIRE_DAEMON(shardd_path());
  fault::ChaosOptions o = tcp_chaos_base();
  o.plan.shard_crashes = 2;
  expect_transport_parity(o, fault::ShardFaultMode::kKillRestart,
                          "shard-crashes/kill-restart");
}

TEST(ChaosTransportParityTest, ShardCrashesViaSigstopPartition) {
  REQUIRE_DAEMON(shardd_path());
  fault::ChaosOptions o = tcp_chaos_base();
  o.plan.shard_crashes = 2;
  expect_transport_parity(o, fault::ShardFaultMode::kSigstop,
                          "shard-crashes/sigstop");
}

TEST(ChaosTransportParityTest, ChurnAndFaultsWithOnlinePatch) {
  REQUIRE_DAEMON(shardd_path());
  fault::ChaosOptions o = tcp_chaos_base();
  o.plan.shard_crashes = 2;
  o.churn.seed = 5;
  o.churn.flow_scale_events = 6;
  o.churn.flash_crowds = 2;
  o.churn.endpoint_arrivals = 1;
  o.churn.endpoint_departures = 1;
  o.online_patch = true;
  expect_transport_parity(o, fault::ShardFaultMode::kKillRestart,
                          "churn+faults/online/kill-restart");
}

TEST(ChaosTransportParityTest, AllFaultKindsBatchedPullOverKillRestart) {
  REQUIRE_DAEMON(shardd_path());
  fault::ChaosOptions o = tcp_chaos_base();
  o.plan.seed = 22;
  o.plan.shard_crashes = 2;
  o.plan.link_failures = 1;
  o.plan.pull_drop_windows = 1;
  o.plan.stale_windows = 1;
  o.batch_pull = true;
  expect_transport_parity(o, fault::ShardFaultMode::kKillRestart,
                          "all-kinds/kill-restart/batched");
}

// --- transport-differential batched-pull suite ------------------------------

struct TcpRig {
  Shardd s0, s1;
  std::unique_ptr<net::TcpKvTransport> db;

  bool start() {
    if (!spawn_shardd(0, false, 0, &s0)) return false;
    if (!spawn_shardd(0, false, 1, &s1)) return false;
    db = std::make_unique<net::TcpKvTransport>(
        controller_options({s0.port, s1.port}));
    return true;
  }
};

TEST(TransportDifferentialTest, SyncLagDistributionIdenticalAcrossTransports) {
  REQUIRE_DAEMON(shardd_path());
  ctrl::AgentOptions opt;
  opt.poll_interval_s = 5.0;

  for (const bool batch : {false, true}) {
    ctrl::AgentOptions o = opt;
    o.batch_pull = batch;

    ctrl::KvStore kv(2);
    ctrl::InProcessTransport inproc(&kv);
    const std::vector<double> local = ctrl::measure_sync_lags(
        inproc, /*n_instances=*/96, o, /*publish_at_s=*/20.0,
        /*horizon_s=*/60.0, /*tick_step_s=*/0.5, /*instances_per_agent=*/4);

    TcpRig rig;  // fresh servers per run: same version history as `kv`
    ASSERT_TRUE(rig.start());
    const std::vector<double> remote = ctrl::measure_sync_lags(
        *rig.db, 96, o, 20.0, 60.0, 0.5, 4);

    ASSERT_EQ(local.size(), 96u);
    // Identical sync-lag distribution, instance for instance: the wire
    // changes how entries travel, never when an instance converges.
    EXPECT_EQ(local, remote) << (batch ? "batched" : "per-key");
    // And the same KV version cut on both sides of the seam.
    EXPECT_EQ(rig.db->version(), inproc.version())
        << (batch ? "batched" : "per-key");
  }
}

TEST(TransportDifferentialTest, PublishedCutsAreByteIdentical) {
  REQUIRE_DAEMON(shardd_path());
  TcpRig rig;
  ASSERT_TRUE(rig.start());
  ctrl::KvStore kv(2);
  ctrl::InProcessTransport inproc(&kv);

  // Same publish sequence on both transports, including erases and a
  // mid-sequence shard-down window buffering writes.
  std::vector<ctrl::KvDelta> deltas(4);
  for (int i = 0; i < 16; ++i) {
    deltas[0].upserts.emplace_back(ctrl::path_key(i), "a" + std::to_string(i));
  }
  for (int i = 0; i < 16; i += 2) {
    deltas[1].upserts.emplace_back(ctrl::path_key(i), "b" + std::to_string(i));
  }
  for (int i = 1; i < 16; i += 4) deltas[2].erases.push_back(ctrl::path_key(i));
  for (int i = 0; i < 16; i += 3) {
    deltas[3].upserts.emplace_back(ctrl::path_key(i), "c" + std::to_string(i));
  }

  for (std::size_t step = 0; step < deltas.size(); ++step) {
    if (step == 1) {
      rig.db->set_shard_up(1, false);
      inproc.set_shard_up(1, false);
    }
    if (step == 3) {
      rig.db->set_shard_up(1, true);
      inproc.set_shard_up(1, true);
    }
    EXPECT_EQ(rig.db->publish_delta(deltas[step]),
              inproc.publish_delta(deltas[step]))
        << "step " << step;
  }

  std::vector<std::string> keys;
  for (int i = 0; i < 16; ++i) keys.push_back(ctrl::path_key(i));
  const ctrl::MultiGetResult a = rig.db->multi_get(keys);
  const ctrl::MultiGetResult b = inproc.multi_get(keys);
  EXPECT_EQ(a.version, b.version);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].status, b.entries[i].status) << keys[i];
    EXPECT_EQ(a.entries[i].value, b.entries[i].value) << keys[i];
    EXPECT_EQ(a.entries[i].version, b.entries[i].version) << keys[i];
  }
}

// --- 2-shard + 4-agent multi-process acceptance ------------------------------

std::vector<ctrl::RouteEntry> routes_for_instance(std::uint64_t id, int gen) {
  std::vector<ctrl::RouteEntry> routes;
  ctrl::RouteEntry e;
  e.dst_site = static_cast<std::uint32_t>(id % 4);
  e.hops = {static_cast<std::uint32_t>(gen),
            static_cast<std::uint32_t>(id + 1)};
  routes.push_back(e);
  if (id % 2 == 0) {
    ctrl::RouteEntry f;
    f.dst_site = static_cast<std::uint32_t>(4 + gen);
    f.hops = {static_cast<std::uint32_t>(10 * gen + id)};
    routes.push_back(f);
  }
  return routes;
}

void publish_generation(net::TcpKvTransport& db, int gen) {
  std::vector<std::pair<std::string, std::string>> batch;
  for (std::uint64_t id = 0; id < 8; ++id) {
    batch.emplace_back(ctrl::path_key(id),
                       ctrl::encode_routes(routes_for_instance(id, gen)));
  }
  db.publish(batch);
}

TEST(NetctrlAcceptanceTest, TwoShardsFourAgentsSurviveKillAndPartition) {
  REQUIRE_DAEMON(shardd_path());
  REQUIRE_DAEMON(agentd_path());

  Shardd s0, s1;
  ASSERT_TRUE(spawn_shardd(0, false, 0, &s0));
  ASSERT_TRUE(spawn_shardd(0, false, 1, &s1));
  net::TcpKvTransport db(controller_options({s0.port, s1.port}));

  // Generation 1 is live before any agent starts.
  publish_generation(db, 1);

  const std::string ports_csv =
      std::to_string(s0.port) + "," + std::to_string(s1.port);
  const std::string dir = ::testing::TempDir();
  std::vector<fault::ChildProcess> agents(4);
  std::vector<std::string> status_paths;
  for (int a = 0; a < 4; ++a) {
    const std::string instances =
        std::to_string(2 * a) + "," + std::to_string(2 * a + 1);
    status_paths.push_back(dir + "netctrl_agent" + std::to_string(a) +
                           ".json");
    std::remove(status_paths.back().c_str());
    ASSERT_TRUE(agents[a].spawn(
        agentd_path(),
        {"--shard-ports", ports_csv, "--instances", instances,
         "--duration-s", "8", "--poll-interval-s", "0.1", "--status-json",
         status_paths[a], "--name", "agentd" + std::to_string(a)}));
    std::string line;
    ASSERT_TRUE(agents[a].read_line(&line, 15000));
    EXPECT_EQ(line, "READY");
  }

  // Phase 1 — seeded shard kill mid-run: generation 2 is published while
  // shard 0 is dead, then the restarted daemon is caught up by snapshot.
  ::usleep(300000);
  db.set_reachable(0, false);
  s0.proc.terminate();
  publish_generation(db, 2);
  Shardd fresh0;
  ASSERT_TRUE(spawn_shardd(s0.port, /*recover=*/true, 0, &fresh0));
  ASSERT_TRUE(db.resync_shard(0));

  // Phase 2 — network partition: shard 1 freezes (SIGSTOP: alive but
  // mute), generation 3 is published past it, then the partition heals
  // and the shard resyncs.
  ::usleep(300000);
  db.set_reachable(1, false);
  ASSERT_TRUE(s1.proc.stop());
  publish_generation(db, 3);
  ::usleep(500000);
  ASSERT_TRUE(s1.proc.resume());
  ASSERT_TRUE(db.resync_shard(1));
  const ctrl::Version final_version = db.version();
  EXPECT_EQ(final_version, 3u);

  // Agents run out their 8 s clocks and report. Every one of them must
  // have converged on generation 3 despite the kill and the partition.
  for (int a = 0; a < 4; ++a) {
    int status = 0;
    ASSERT_TRUE(agents[a].wait_exit(30000, &status)) << "agent " << a;
    EXPECT_EQ(status, 0) << "agent " << a;
  }
  for (int a = 0; a < 4; ++a) {
    std::ifstream in(status_paths[a]);
    ASSERT_TRUE(in.good()) << status_paths[a];
    std::stringstream ss;
    ss << in.rdbuf();
    const auto doc = obs::Json::parse(ss.str());
    ASSERT_TRUE(doc.has_value()) << status_paths[a];
    const obs::Json* applied = doc->find("applied_version");
    ASSERT_NE(applied, nullptr);
    EXPECT_EQ(applied->as_uint(), final_version) << "agent " << a;
    const obs::Json* polls = doc->find("polls");
    ASSERT_NE(polls, nullptr);
    EXPECT_GT(polls->as_uint(), 0u);
    const obs::Json* routes = doc->find("routes");
    ASSERT_NE(routes, nullptr);
    for (std::uint64_t id = 2 * static_cast<std::uint64_t>(a);
         id <= 2 * static_cast<std::uint64_t>(a) + 1; ++id) {
      const obs::Json* table = routes->find(std::to_string(id));
      ASSERT_NE(table, nullptr) << "agent " << a << " instance " << id;
      EXPECT_EQ(table->as_string(),
                ctrl::encode_routes(routes_for_instance(id, 3)))
          << "agent " << a << " instance " << id;
    }
  }
}

}  // namespace
}  // namespace megate
