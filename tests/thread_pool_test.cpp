// ThreadPool hardening tests (ISSUE satellite): exception propagation
// through submit futures and parallel_for, degenerate sizes (zero tasks,
// single-thread pool, fewer tasks than workers), a multi-producer submit
// stress, and the submit-after-shutdown contract (a task enqueued after
// the workers drained the queue used to deadlock its future forever; it
// now throws).

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "megate/te/megate_solver.h"
#include "megate/util/thread_pool.h"
#include "test_helpers.h"

namespace megate::util {
namespace {

TEST(ThreadPoolHardening, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; }).wait();
  pool.shutdown();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_THROW(pool.submit([&] { ++ran; }), std::runtime_error);
  EXPECT_EQ(ran.load(), 1);  // the rejected task never runs
}

TEST(ThreadPoolHardening, ShutdownIsIdempotentAndDestructorSafe) {
  ThreadPool pool(2);
  pool.parallel_for(10, [](std::size_t) {});
  pool.shutdown();
  pool.shutdown();  // second call is a no-op
  EXPECT_THROW(pool.parallel_for(1, [](std::size_t) {}),
               std::runtime_error);
  // Destructor after explicit shutdown must not double-join.
}

TEST(ThreadPoolHardening, SubmitFuturePropagatesTaskException) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(f.get(), std::logic_error);
  // The worker survives a throwing task.
  std::atomic<int> x{0};
  pool.submit([&] { x = 7; }).wait();
  EXPECT_EQ(x.load(), 7);
}

TEST(ThreadPoolHardening, SingleThreadPoolRunsEverything) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolHardening, SingleThreadPoolPropagatesExceptions) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(5,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // Usable afterwards.
  std::atomic<int> sum{0};
  pool.parallel_for(4, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 6);
}

TEST(ThreadPoolHardening, FewerTasksThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
  pool.parallel_for(1, [&](std::size_t i) { EXPECT_EQ(i, 0u); });
}

TEST(ThreadPoolHardening, ZeroTasksNeverTouchTheQueue) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolHardening, ConcurrentProducersAllTasksComplete) {
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 250;
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<void>>> futures(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futures[p].reserve(kTasksPerProducer);
      for (int i = 0; i < kTasksPerProducer; ++i) {
        futures[p].push_back(pool.submit([&] { ++executed; }));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& per_producer : futures) {
    for (auto& f : per_producer) f.wait();
  }
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolHardening, ParallelForFirstErrorWinsAndStops) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  try {
    pool.parallel_for(10000, [&](std::size_t) {
      ++calls;
      throw std::runtime_error("every task fails");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "every task fails");
  }
  // Early-abort: once a failure is flagged, remaining chunks short-circuit,
  // so far fewer than all 10000 iterations actually ran.
  EXPECT_LT(calls.load(), 10000);
}

// MegaTeSolver used to construct (and tear down) a fresh ThreadPool on
// every solve() call — worker spawn/join dominated small solves. The pool
// now lives on the solver and is rebuilt only when the thread count
// changes.
TEST(ThreadPoolHardening, MegaTeSolverReusesItsPoolAcrossSolves) {
  te::MegaTeSolver solver;
  ThreadPool* first = &solver.thread_pool();
  auto s = megate::testing::make_scenario(4, 6, 2);
  (void)solver.solve(s->problem(), {});
  EXPECT_EQ(&solver.thread_pool(), first);
  (void)solver.solve(s->problem(), {});
  EXPECT_EQ(&solver.thread_pool(), first);

  // Changing the thread count rebuilds the pool (the old pool is freed,
  // so compare stability rather than inequality of recycled addresses):
  // solves keep working and the new pool is stable across further solves.
  te::MegaTeOptions opts = solver.options();
  opts.threads = 2;
  solver.set_options(opts);
  ThreadPool* second = &solver.thread_pool();
  (void)solver.solve(s->problem(), {});
  EXPECT_EQ(&solver.thread_pool(), second);

  // Re-setting the same count does not rebuild.
  solver.set_options(opts);
  EXPECT_EQ(&solver.thread_pool(), second);
}

}  // namespace
}  // namespace megate::util
