// Learned-allocation suite (ISSUE 10):
//
//   1. TealRepairParity — the shared feasibility-repair kernel
//      (te/repair_kernel.h) must reproduce the pre-refactor
//      TealSolver::solve loop byte-for-byte. The original ADMM loop is
//      embedded below verbatim as the oracle and compared against the
//      refactored TealSolver across seeds, loads, link faults, and thread
//      counts {serial, 1, 2, 4, 8}.
//
//   2. RepairKernel — unit behaviour: hard final projection yields
//      feasibility, down links zero out, refill recovers capacity the
//      projection freed, argument validation, arena reuse.
//
//   3. LearnedGate — MegaTeSolver's learned mode: untrained and
//      distribution-shift intervals fall back to the exact solve (and
//      recover its exact answer), warm models get accepted, and the
//      differential suite below audits >= 100 seeded intervals of
//      learned-vs-exact through te::check_solution +
//      count_hop_budget_violations.
//
//   4. FlowPredictor satellites — predict() determinism under hash-order
//      permutation (two-construction byte equality via per-pair
//      fingerprints), EWMA decay of absent flows, mape() with zero
//      overlap, QoS preservation across observe/predict.
//
//   5. LearnedConcurrency — allocate/observe/drift_mape from concurrent
//      threads (run under TSan in ci.sh).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "megate/te/baselines.h"
#include "megate/te/checker.h"
#include "megate/te/learned.h"
#include "megate/te/megate_solver.h"
#include "megate/te/repair_kernel.h"
#include "megate/tm/delta.h"
#include "megate/tm/prediction.h"
#include "megate/topo/failures.h"
#include "megate/util/rng.h"
#include "test_helpers.h"

namespace megate {
namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// ===========================================================================
// Part 1 — the pre-refactor TealSolver::solve, embedded verbatim as the
// bit-identity oracle (only renamed; `options_` -> `options`).
// ===========================================================================

te::TeSolution teal_reference(const te::TeProblem& problem,
                              const te::TealOptions& options) {
  if (!problem.valid()) throw std::invalid_argument("invalid TE problem");
  const topo::Graph& g = *problem.graph;
  const topo::TunnelSet& tunnels = *problem.tunnels;
  const tm::TrafficMatrix& traffic = *problem.traffic;

  te::TeSolution sol;
  sol.solver_name = "TEAL";
  sol.total_demand_gbps = traffic.total_demand_gbps();

  const std::uint64_t num_flows = traffic.num_flows();
  if (num_flows > options.max_flows) {
    sol.solved = false;
    sol.est_memory_bytes = num_flows * 4 * sizeof(double) * 3;
    return sol;
  }

  struct PairState {
    topo::SitePair pair;
    const std::vector<tm::EndpointDemand>* flows;
    std::vector<std::size_t> alive;
    std::vector<double> x;
  };
  std::vector<PairState> states;
  for (const auto& [pair, flows] : traffic.pairs()) {
    const auto& ts = tunnels.tunnels(pair.src, pair.dst);
    PairState st;
    st.pair = pair;
    st.flows = &flows;
    for (std::size_t t = 0; t < ts.size(); ++t) {
      if (ts[t].alive(g)) st.alive.push_back(t);
    }
    if (st.alive.empty()) continue;
    st.x.assign(flows.size() * st.alive.size(), 0.0);
    states.push_back(std::move(st));
  }

  for (PairState& st : states) {
    const auto& ts = tunnels.tunnels(st.pair.src, st.pair.dst);
    std::vector<double> probs(st.alive.size());
    double z = 0.0;
    for (std::size_t a = 0; a < st.alive.size(); ++a) {
      probs[a] = std::exp(-options.softmax_temperature *
                          (ts[st.alive[a]].weight - 1.0));
      z += probs[a];
    }
    for (double& p : probs) p /= z;
    for (std::size_t i = 0; i < st.flows->size(); ++i) {
      const double d = (*st.flows)[i].demand_gbps;
      for (std::size_t a = 0; a < st.alive.size(); ++a) {
        st.x[i * st.alive.size() + a] = d * probs[a];
      }
    }
  }

  std::vector<double> usage(g.num_links());
  std::vector<double> scale(g.num_links());
  for (std::size_t iter = 0; iter < options.admm_iterations; ++iter) {
    std::fill(usage.begin(), usage.end(), 0.0);
    for (const PairState& st : states) {
      const auto& ts = tunnels.tunnels(st.pair.src, st.pair.dst);
      std::vector<double> tunnel_sums(st.alive.size(), 0.0);
      for (std::size_t i = 0; i < st.flows->size(); ++i) {
        for (std::size_t a = 0; a < st.alive.size(); ++a) {
          tunnel_sums[a] += st.x[i * st.alive.size() + a];
        }
      }
      for (std::size_t a = 0; a < st.alive.size(); ++a) {
        for (topo::EdgeId e : ts[st.alive[a]].links) {
          usage[e] += tunnel_sums[a];
        }
      }
    }
    const bool last = iter + 1 == options.admm_iterations;
    bool any_overload = false;
    for (topo::EdgeId e = 0; e < g.num_links(); ++e) {
      const topo::Link& l = g.link(e);
      const double cap = l.up ? l.capacity_gbps : 0.0;
      if (cap <= 0.0) {
        scale[e] = usage[e] > 0.0 ? 0.0 : 1.0;
        if (usage[e] > 0.0) any_overload = true;
        continue;
      }
      if (usage[e] > cap) {
        any_overload = true;
        const double hard = cap / usage[e];
        scale[e] = last ? hard : 0.5 * (1.0 + hard);
      } else {
        scale[e] = 1.0;
      }
    }
    for (PairState& st : states) {
      const auto& ts = tunnels.tunnels(st.pair.src, st.pair.dst);
      for (std::size_t a = 0; a < st.alive.size(); ++a) {
        double factor = 1.0;
        for (topo::EdgeId e : ts[st.alive[a]].links) {
          factor = std::min(factor, scale[e]);
        }
        if (factor >= 1.0) continue;
        for (std::size_t i = 0; i < st.flows->size(); ++i) {
          st.x[i * st.alive.size() + a] *= factor;
        }
      }
    }

    if (!last) {
      std::vector<double> residual(g.num_links(), 0.0);
      std::fill(usage.begin(), usage.end(), 0.0);
      for (const PairState& st : states) {
        const auto& ts = tunnels.tunnels(st.pair.src, st.pair.dst);
        for (std::size_t a = 0; a < st.alive.size(); ++a) {
          double tunnel_sum = 0.0;
          for (std::size_t i = 0; i < st.flows->size(); ++i) {
            tunnel_sum += st.x[i * st.alive.size() + a];
          }
          for (topo::EdgeId e : ts[st.alive[a]].links) {
            usage[e] += tunnel_sum;
          }
        }
      }
      for (topo::EdgeId e = 0; e < g.num_links(); ++e) {
        const topo::Link& l = g.link(e);
        residual[e] = (l.up ? l.capacity_gbps : 0.0) - usage[e];
      }
      for (PairState& st : states) {
        const auto& ts = tunnels.tunnels(st.pair.src, st.pair.dst);
        double unallocated = 0.0;
        std::vector<double> per_flow(st.flows->size());
        for (std::size_t i = 0; i < st.flows->size(); ++i) {
          double got = 0.0;
          for (std::size_t a = 0; a < st.alive.size(); ++a) {
            got += st.x[i * st.alive.size() + a];
          }
          per_flow[i] = std::max(0.0, (*st.flows)[i].demand_gbps - got);
          unallocated += per_flow[i];
        }
        if (unallocated <= 1e-12) continue;
        for (std::size_t a = 0; a < st.alive.size() && unallocated > 1e-12;
             ++a) {
          double room = std::numeric_limits<double>::infinity();
          for (topo::EdgeId e : ts[st.alive[a]].links) {
            room = std::min(room, residual[e]);
          }
          if (room <= 1e-12) continue;
          const double grant = std::min(room, unallocated);
          const double frac = grant / unallocated;
          for (std::size_t i = 0; i < st.flows->size(); ++i) {
            const double add = per_flow[i] * frac;
            st.x[i * st.alive.size() + a] += add;
            per_flow[i] -= add;
          }
          for (topo::EdgeId e : ts[st.alive[a]].links) {
            residual[e] -= grant;
          }
          unallocated -= grant;
        }
      }
    } else if (!any_overload) {
      break;
    }
  }

  std::size_t dense_elems = 0;
  for (const PairState& st : states) {
    const auto& ts = tunnels.tunnels(st.pair.src, st.pair.dst);
    auto& alloc = sol.pairs[st.pair];
    alloc.tunnel_alloc.assign(ts.size(), 0.0);
    dense_elems += st.x.size();
    for (std::size_t i = 0; i < st.flows->size(); ++i) {
      for (std::size_t a = 0; a < st.alive.size(); ++a) {
        const double v = st.x[i * st.alive.size() + a];
        alloc.tunnel_alloc[st.alive[a]] += v;
        sol.satisfied_gbps += v;
      }
    }
  }
  sol.iterations = options.admm_iterations;
  sol.est_memory_bytes = dense_elems * sizeof(double) * 2;
  return sol;
}

/// Bitwise comparison of two solutions' allocations (not the timings).
void expect_bitwise_equal(const te::TeSolution& a, const te::TeSolution& b,
                          const std::string& label) {
  ASSERT_TRUE(bits_equal(a.satisfied_gbps, b.satisfied_gbps))
      << label << ": satisfied " << a.satisfied_gbps << " vs "
      << b.satisfied_gbps;
  ASSERT_EQ(a.pairs.size(), b.pairs.size()) << label;
  for (const auto& [pair, alloc] : a.pairs) {
    auto it = b.pairs.find(pair);
    ASSERT_NE(it, b.pairs.end()) << label;
    ASSERT_EQ(alloc.tunnel_alloc.size(), it->second.tunnel_alloc.size())
        << label;
    for (std::size_t t = 0; t < alloc.tunnel_alloc.size(); ++t) {
      ASSERT_TRUE(
          bits_equal(alloc.tunnel_alloc[t], it->second.tunnel_alloc[t]))
          << label << ": pair (" << pair.src << "," << pair.dst
          << ") tunnel " << t;
    }
    ASSERT_EQ(alloc.flow_tunnel, it->second.flow_tunnel) << label;
  }
}

TEST(TealRepairParity, BitIdenticalAcrossSeedsLoadsAndThreads) {
  for (std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
    // High load forces real projection work; low load exercises the
    // refill/early-exit path.
    for (double load : {0.15, 0.9}) {
      auto s = testing::make_scenario(8, 14, 3, load, seed);
      const te::TeProblem problem = s->problem();
      const te::TeSolution ref = teal_reference(problem, {});
      for (std::size_t threads : {0UL, 1UL, 2UL, 4UL, 8UL}) {
        te::TealOptions opts;
        opts.threads = threads;
        te::TealSolver solver(opts);
        const te::TeSolution got = solver.solve(problem);
        expect_bitwise_equal(ref, got,
                             "seed=" + std::to_string(seed) + " load=" +
                                 std::to_string(load) + " threads=" +
                                 std::to_string(threads));
      }
    }
  }
}

TEST(TealRepairParity, BitIdenticalWithDownLinks) {
  auto s = testing::make_scenario(8, 14, 3, 0.6, 11);
  const auto events = topo::inject_link_failures(s->graph, 2, 5);
  ASSERT_FALSE(events.empty());
  const te::TeProblem problem = s->problem();
  const te::TeSolution ref = teal_reference(problem, {});
  for (std::size_t threads : {0UL, 4UL}) {
    te::TealOptions opts;
    opts.threads = threads;
    te::TealSolver solver(opts);
    expect_bitwise_equal(ref, solver.solve(problem),
                         "faulted threads=" + std::to_string(threads));
  }
}

TEST(TealRepairParity, ArenaReuseAcrossSolvesIsBitStable) {
  auto s1 = testing::make_scenario(7, 12, 3, 0.7, 3);
  auto s2 = testing::make_scenario(9, 16, 2, 0.4, 4);
  te::TealOptions opts;
  opts.threads = 2;
  te::TealSolver solver(opts);
  const te::TeSolution first = solver.solve(s1->problem());
  // Interleave a different instance, then re-solve the first: the reused
  // SoA arena must not leak state between problems.
  solver.solve(s2->problem());
  expect_bitwise_equal(first, solver.solve(s1->problem()), "arena reuse");
}

// ===========================================================================
// Part 2 — RepairKernel unit behaviour.
// ===========================================================================

TEST(RepairKernel, RejectsZeroIterations) {
  te::RepairKernel k;
  const std::vector<double> cap = {10.0};
  k.reset(cap);
  te::RepairOptions opts;
  opts.iterations = 0;
  EXPECT_THROW(k.run(opts), std::invalid_argument);
}

TEST(RepairKernel, RejectsPairWithoutTunnels) {
  te::RepairKernel k;
  const std::vector<double> cap = {10.0};
  k.reset(cap);
  const double d = 5.0;
  k.begin_pair({&d, 1});
  EXPECT_THROW(k.finish_pair(), std::logic_error);
}

TEST(RepairKernel, HardFinalProjectionYieldsFeasibility) {
  te::RepairKernel k;
  const std::vector<double> cap = {10.0, 10.0};
  k.reset(cap);
  const std::vector<double> demands = {30.0, 20.0};
  const std::vector<topo::EdgeId> t0 = {0};
  const std::vector<topo::EdgeId> t1 = {0, 1};
  const std::size_t p = k.begin_pair(demands);
  k.add_tunnel(t0);
  k.add_tunnel(t1);
  k.finish_pair();
  auto x = k.x(p);
  x[0] = 25.0;  // flow 0 -> tunnel 0 (overloads link 0)
  x[1] = 5.0;   // flow 0 -> tunnel 1
  x[2] = 15.0;  // flow 1 -> tunnel 0
  x[3] = 5.0;   // flow 1 -> tunnel 1
  te::RepairOptions opts;
  opts.iterations = 4;
  const te::RepairStats stats = k.run(opts);
  EXPECT_TRUE(stats.feasible);
  EXPECT_LE(stats.max_utilization, 1.0 + 1e-9);
  // Link 0 carries both tunnels; its usage must have been projected down
  // to capacity (it started at 50 on 10).
  const auto xr = k.x(p);
  const double link0 = xr[0] + xr[1] + xr[2] + xr[3];
  EXPECT_LE(link0, cap[0] * (1.0 + 1e-9));
  EXPECT_GT(stats.allocated_gbps, 0.0);
}

TEST(RepairKernel, DownLinkZeroesItsTunnel) {
  te::RepairKernel k;
  const std::vector<double> cap = {0.0, 10.0};  // link 0 down
  k.reset(cap);
  const std::vector<double> demands = {8.0};
  const std::vector<topo::EdgeId> dead = {0};
  const std::vector<topo::EdgeId> live = {1};
  const std::size_t p = k.begin_pair(demands);
  k.add_tunnel(dead);
  k.add_tunnel(live);
  k.finish_pair();
  auto x = k.x(p);
  x[0] = 4.0;
  x[1] = 4.0;
  te::RepairOptions opts;
  opts.iterations = 3;
  const te::RepairStats stats = k.run(opts);
  EXPECT_TRUE(stats.feasible);
  const auto xr = k.x(p);
  EXPECT_EQ(xr[0], 0.0);
  // The refill re-routes the freed demand onto the live tunnel.
  EXPECT_NEAR(xr[1], 8.0, 1e-9);
}

TEST(RepairKernel, RefillRecoversCapacityFreedByProjection) {
  // Pair A monopolizes a shared link; pair B has a private alternative
  // the initial proposal ignored. After projection + refill, B's demand
  // lands on its private tunnel.
  te::RepairKernel k;
  const std::vector<double> cap = {10.0, 50.0};
  k.reset(cap);
  const std::vector<double> da = {10.0};
  const std::vector<topo::EdgeId> shared = {0};
  const std::size_t pa = k.begin_pair(da);
  k.add_tunnel(shared);
  k.finish_pair();
  const std::vector<double> db = {20.0};
  const std::vector<topo::EdgeId> priv = {1};
  const std::size_t pb = k.begin_pair(db);
  k.add_tunnel(shared);
  k.add_tunnel(priv);
  k.finish_pair();
  k.x(pa)[0] = 10.0;
  k.x(pb)[0] = 20.0;  // all of B initially on the shared (overloaded) link
  k.x(pb)[1] = 0.0;
  te::RepairOptions opts;
  opts.iterations = 16;  // soft projection converges geometrically
  const te::RepairStats stats = k.run(opts);
  EXPECT_TRUE(stats.feasible);
  // Projection alone would scale the shared link down to its 10 Gbps and
  // strand B's excess; the refill walks B's unallocated demand onto the
  // private tunnel, converging to ~23.3 total (A and B's shared tunnel
  // split link 0 proportionally — the repair is a heuristic, not an LP).
  EXPECT_GT(stats.allocated_gbps, 20.0);
  EXPECT_GT(k.x(pb)[1], 12.0);
}

TEST(RepairKernel, ParallelRunsBitIdenticalToSerial) {
  // Direct kernel-level check (TealRepairParity covers the end-to-end
  // path): random jagged problems, serial vs pooled runs.
  util::Rng rng(99);
  for (int round = 0; round < 5; ++round) {
    const std::size_t links = 6 + static_cast<std::size_t>(rng.uniform() * 6);
    std::vector<double> cap(links);
    for (double& c : cap) c = 5.0 + 20.0 * rng.uniform();
    const std::size_t pairs = 8 + static_cast<std::size_t>(rng.uniform() * 8);

    auto build = [&](te::RepairKernel& k, std::uint64_t seed) {
      util::Rng r(seed);
      k.reset(cap);
      for (std::size_t p = 0; p < pairs; ++p) {
        std::vector<double> demands(1 + static_cast<std::size_t>(
                                            r.uniform() * 4));
        for (double& d : demands) d = 1.0 + 10.0 * r.uniform();
        k.begin_pair(demands);
        const std::size_t nt = 1 + static_cast<std::size_t>(r.uniform() * 3);
        for (std::size_t t = 0; t < nt; ++t) {
          std::vector<topo::EdgeId> path(
              1 + static_cast<std::size_t>(r.uniform() * 3));
          for (topo::EdgeId& e : path) {
            e = static_cast<topo::EdgeId>(r.uniform() * links);
          }
          k.add_tunnel(path);
        }
        k.finish_pair();
        auto x = k.x(p);
        for (double& v : x) v = 10.0 * r.uniform();
      }
    };

    te::RepairKernel serial;
    build(serial, 1000 + round);
    te::RepairOptions sopts;
    sopts.iterations = 7;
    serial.run(sopts);

    for (std::size_t threads : {2UL, 5UL}) {
      util::ThreadPool pool(threads);
      te::RepairKernel par;
      build(par, 1000 + round);
      te::RepairOptions popts;
      popts.iterations = 7;
      popts.pool = &pool;
      par.run(popts);
      for (std::size_t p = 0; p < pairs; ++p) {
        const auto xs = serial.x(p);
        const auto xp = par.x(p);
        ASSERT_EQ(xs.size(), xp.size());
        for (std::size_t i = 0; i < xs.size(); ++i) {
          ASSERT_TRUE(bits_equal(xs[i], xp[i]))
              << "round " << round << " threads " << threads << " pair "
              << p << " cell " << i;
        }
      }
    }
  }
}

// ===========================================================================
// Part 3 — the learned fast path through MegaTeSolver's quality gate.
// ===========================================================================

/// Scales every flow of `base` by `factor` (a distribution shift when
/// far from 1), preserving identities and QoS.
tm::TrafficMatrix scale_matrix(const tm::TrafficMatrix& base, double factor) {
  tm::TrafficMatrix out;
  for (const auto& [pair, flows] : base.pairs()) {
    for (tm::EndpointDemand d : flows) {
      d.demand_gbps *= factor;
      out.add(d);
    }
  }
  return out;
}

/// Per-flow jitter evolution (independent of container order).
tm::TrafficMatrix jitter_matrix(const tm::TrafficMatrix& base,
                                std::uint64_t seed, double spread) {
  tm::TrafficMatrix out;
  for (const auto& [pair, flows] : base.pairs()) {
    for (std::size_t i = 0; i < flows.size(); ++i) {
      tm::EndpointDemand d = flows[i];
      util::Rng rng(seed ^ (d.src * 0x9E3779B97F4A7C15ULL) ^
                    (d.dst * 0xBF58476D1CE4E5B9ULL) ^ i);
      d.demand_gbps *= 1.0 - spread + 2.0 * spread * rng.uniform();
      out.add(d);
    }
  }
  return out;
}

TEST(LearnedGate, UntrainedFallsBackToExact) {
  auto s = testing::make_scenario(6, 10, 3, 0.3, 17);
  te::MegaTeSolver solver;
  te::SolveContext ctx;
  ctx.learned = true;
  const te::SolveReport report = solver.solve(s->problem(), ctx);
  EXPECT_TRUE(report.learned.attempted);
  EXPECT_FALSE(report.learned.accepted);
  EXPECT_EQ(report.learned.fallback_reason, "untrained");
  // The fallback IS the exact solve.
  te::MegaTeSolver exact;
  const te::SolveReport ref = exact.solve(s->problem(), {});
  EXPECT_DOUBLE_EQ(report.solution.satisfied_gbps,
                   ref.solution.satisfied_gbps);
  // ... and it trained the allocator.
  EXPECT_EQ(solver.learned_allocator().observations(), 1u);
}

TEST(LearnedGate, WarmModelGetsAccepted) {
  auto s = testing::make_scenario(6, 10, 3, 0.3, 21);
  te::MegaTeSolver solver;
  te::SolveContext ctx;
  ctx.learned = true;
  // Warm-up: the first min_observations learned calls fall back + train.
  te::SolveReport r1 = solver.solve(s->problem(), ctx);
  EXPECT_EQ(r1.learned.fallback_reason, "untrained");
  te::SolveReport r2 = solver.solve(s->problem(), ctx);
  EXPECT_EQ(r2.learned.fallback_reason, "untrained");
  const te::SolveReport r3 = solver.solve(s->problem(), ctx);
  EXPECT_TRUE(r3.learned.accepted) << r3.learned.fallback_reason;
  EXPECT_EQ(r3.solution.solver_name, "MegaTE-learned");
  // Accepted solution satisfies the gate's own quality bar.
  EXPECT_GE(r3.solution.satisfied_gbps + 1e-9,
            solver.options().learned.accept_fraction *
                r3.learned.exact_estimate_gbps);
  // And it is fully audited: checker-clean with flow assignments.
  te::CheckOptions copts;
  copts.require_flow_assignment = true;
  EXPECT_TRUE(te::check_solution(s->problem(), r3.solution, copts).ok);
}

TEST(LearnedGate, DistributionShiftTriggersFallbackAndRecovers) {
  auto s = testing::make_scenario(6, 10, 3, 0.25, 29);
  te::MegaTeSolver solver;
  te::SolveContext ctx;
  ctx.learned = true;
  for (int i = 0; i < 3; ++i) solver.solve(s->problem(), ctx);

  // Flash crowd: demands x8 — the flow predictor's MAPE explodes and the
  // drift guard must refuse the learned path *before* shipping a stale
  // allocation.
  const tm::TrafficMatrix shifted = scale_matrix(s->traffic, 8.0);
  te::TeProblem shift_problem = s->problem();
  shift_problem.traffic = &shifted;
  const te::SolveReport shift = solver.solve(shift_problem, ctx);
  EXPECT_FALSE(shift.learned.accepted);
  EXPECT_EQ(shift.learned.fallback_reason, "drift");
  // Recovery of exactness: the returned solution equals the exact solve.
  te::MegaTeSolver exact;
  const te::SolveReport ref = exact.solve(shift_problem, {});
  EXPECT_DOUBLE_EQ(shift.solution.satisfied_gbps,
                   ref.solution.satisfied_gbps);
}

TEST(LearnedGate, HopBudgetIsHonoredByLearnedSolutions) {
  auto s = testing::make_scenario(8, 14, 3, 0.3, 31);
  te::MegaTeOptions opts;
  opts.site_lp.max_sr_hops = 3;
  te::MegaTeSolver solver(opts);
  te::SolveContext ctx;
  ctx.learned = true;
  te::SolveReport last;
  for (int i = 0; i < 4; ++i) last = solver.solve(s->problem(), ctx);
  EXPECT_TRUE(last.learned.accepted) << last.learned.fallback_reason;
  EXPECT_EQ(te::count_hop_budget_violations(s->problem(), last.solution, 3),
            0u);
}

TEST(LearnedGate, DeterministicAcrossRunsAndThreadCounts) {
  for (std::size_t threads : {1UL, 4UL}) {
    auto run = [&](std::uint64_t seed) {
      auto s = testing::make_scenario(6, 10, 3, 0.3, 13);
      te::MegaTeOptions opts;
      opts.threads = threads;
      te::MegaTeSolver solver(opts);
      te::SolveContext ctx;
      ctx.learned = true;
      std::vector<te::TeSolution> sols;
      tm::TrafficMatrix current = s->traffic;
      for (int i = 0; i < 5; ++i) {
        te::TeProblem p = s->problem();
        p.traffic = &current;
        sols.push_back(solver.solve(p, ctx).solution);
        current = jitter_matrix(current, seed + i, 0.1);
      }
      return sols;
    };
    const auto a = run(77);
    const auto b = run(77);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      expect_bitwise_equal(a[i], b[i],
                           "interval " + std::to_string(i) + " threads " +
                               std::to_string(threads));
    }
  }
}

// The ISSUE's differential bar: >= 100 seeded intervals of learned-mode
// solving, every returned solution audited through the checker (with flow
// assignments) and the hop-budget counter, accepted solutions compared
// against the exact solve of the same interval.
TEST(LearnedGate, DifferentialHundredIntervalsVsExact) {
  std::size_t intervals_total = 0;
  std::size_t accepted_total = 0;
  for (std::uint64_t seed : {3ULL, 41ULL, 59ULL, 67ULL}) {
    auto s = testing::make_scenario(6, 10, 3, 0.3, seed);
    te::MegaTeOptions opts;
    opts.site_lp.max_sr_hops = 4;
    te::MegaTeSolver solver(opts);
    te::MegaTeSolver exact(opts);
    te::SolveContext ctx;
    ctx.learned = true;
    tm::TrafficMatrix current = s->traffic;
    for (int i = 0; i < 26; ++i) {
      te::TeProblem p = s->problem();
      p.traffic = &current;
      const te::SolveReport learned = solver.solve(p, ctx);
      const te::SolveReport ref = exact.solve(p, {});
      ++intervals_total;

      // Audit EVERY returned solution, learned or fallback.
      te::CheckOptions copts;
      copts.require_flow_assignment = true;
      const te::CheckResult chk =
          te::check_solution(p, learned.solution, copts);
      ASSERT_TRUE(chk.ok) << "seed " << seed << " interval " << i << ": "
                          << (chk.violations.empty()
                                  ? "?"
                                  : chk.violations.front());
      ASSERT_EQ(te::count_hop_budget_violations(p, learned.solution, 4), 0u)
          << "seed " << seed << " interval " << i;

      if (learned.learned.accepted) {
        ++accepted_total;
        // The gate's promise: within accept_fraction of the exact path
        // (compared against the true exact solve, not just the EWMA).
        EXPECT_GE(learned.solution.satisfied_gbps,
                  0.9 * ref.solution.satisfied_gbps)
            << "seed " << seed << " interval " << i;
      } else {
        // Fallbacks return the exact answer itself.
        EXPECT_DOUBLE_EQ(learned.solution.satisfied_gbps,
                         ref.solution.satisfied_gbps)
            << "seed " << seed << " interval " << i;
      }
      current = jitter_matrix(current, seed * 1000 + i, 0.15);
    }
  }
  ASSERT_GE(intervals_total, 100u);
  // The learned path must actually engage — a gate that always falls back
  // would pass the audits vacuously.
  EXPECT_GE(accepted_total, intervals_total / 2)
      << "learned path accepted only " << accepted_total << "/"
      << intervals_total;
}

// ===========================================================================
// Part 4 — FlowPredictor satellites.
// ===========================================================================

TEST(FlowPredictorDeterminism, PredictIsByteEqualAcrossInsertionOrders) {
  // Same flow population, inserted in opposite orders: the two predictors
  // hold equal state in differently-ordered hash tables. predict() must
  // emit byte-identical matrices (order-sensitive per-pair fingerprints).
  std::vector<tm::EndpointDemand> flows;
  for (std::uint32_t i = 0; i < 64; ++i) {
    tm::EndpointDemand d;
    d.src = tm::make_endpoint(i % 5, i);
    d.dst = tm::make_endpoint((i + 1) % 5, i + 100);
    d.demand_gbps = 0.5 + 0.01 * i;
    d.qos = i % 3 == 0 ? tm::QosClass::kClass1 : tm::QosClass::kClass3;
    flows.push_back(d);
  }
  tm::TrafficMatrix forward;
  for (const auto& d : flows) forward.add(d);
  tm::TrafficMatrix backward;
  for (auto it = flows.rbegin(); it != flows.rend(); ++it) backward.add(*it);

  tm::FlowPredictor a(tm::PredictorKind::kEwma, 0.3);
  tm::FlowPredictor b(tm::PredictorKind::kEwma, 0.3);
  a.observe(forward);
  b.observe(backward);
  ASSERT_EQ(a.tracked_flows(), b.tracked_flows());

  const auto fa = tm::fingerprint_pairs(a.predict());
  const auto fb = tm::fingerprint_pairs(b.predict());
  ASSERT_EQ(fa.size(), fb.size());
  for (const auto& [pair, fp] : fa) {
    auto it = fb.find(pair);
    ASSERT_NE(it, fb.end());
    EXPECT_EQ(fp, it->second)
        << "pair (" << pair.src << "," << pair.dst << ")";
  }
  // And predict() itself is stable across repeated calls.
  const auto fa2 = tm::fingerprint_pairs(a.predict());
  EXPECT_EQ(fa.size(), fa2.size());
  for (const auto& [pair, fp] : fa) EXPECT_EQ(fp, fa2.at(pair));
}

TEST(FlowPredictorEdgeCases, EwmaDecaysAndEventuallyDropsAbsentFlows) {
  const double alpha = 0.5;
  tm::FlowPredictor p(tm::PredictorKind::kEwma, alpha);
  tm::TrafficMatrix m;
  tm::EndpointDemand d;
  d.src = tm::make_endpoint(0, 1);
  d.dst = tm::make_endpoint(1, 2);
  d.demand_gbps = 8.0;
  m.add(d);
  p.observe(m);
  ASSERT_EQ(p.tracked_flows(), 1u);

  const tm::TrafficMatrix empty;
  double expected = 8.0;
  for (int n = 1; n <= 5; ++n) {
    p.observe(empty);
    expected *= 1.0 - alpha;
    ASSERT_EQ(p.tracked_flows(), 1u) << "period " << n;
    const auto fp = tm::fingerprint_pairs(p.predict());
    ASSERT_EQ(fp.size(), 1u);
    EXPECT_NEAR(fp.begin()->second.total_gbps, expected, 1e-12)
        << "period " << n;
  }
  // Decay continues to the 1e-9 cutoff, at which point the flow is
  // erased rather than tracked forever.
  for (int n = 0; n < 40; ++n) p.observe(empty);
  EXPECT_EQ(p.tracked_flows(), 0u);
  EXPECT_EQ(p.predict().num_flows(), 0u);

  // kLastValue forgets immediately.
  tm::FlowPredictor last(tm::PredictorKind::kLastValue);
  last.observe(m);
  ASSERT_EQ(last.tracked_flows(), 1u);
  last.observe(empty);
  EXPECT_EQ(last.tracked_flows(), 0u);
}

TEST(FlowPredictorEdgeCases, MapeWithZeroOverlapIsZero) {
  tm::FlowPredictor p(tm::PredictorKind::kEwma, 0.3);
  tm::TrafficMatrix seen;
  tm::EndpointDemand d;
  d.src = tm::make_endpoint(0, 1);
  d.dst = tm::make_endpoint(1, 1);
  d.demand_gbps = 4.0;
  seen.add(d);
  p.observe(seen);

  // Entirely different flows: nothing matches -> 0, not NaN/throw.
  tm::TrafficMatrix other;
  d.src = tm::make_endpoint(2, 9);
  d.dst = tm::make_endpoint(3, 9);
  other.add(d);
  EXPECT_EQ(p.mape(other), 0.0);
  // Empty actual matrix: same.
  EXPECT_EQ(p.mape(tm::TrafficMatrix{}), 0.0);
  // Zero-demand flows are skipped, not divided by.
  tm::TrafficMatrix zero;
  d.src = tm::make_endpoint(0, 1);
  d.dst = tm::make_endpoint(1, 1);
  d.demand_gbps = 0.0;
  zero.add(d);
  EXPECT_EQ(p.mape(zero), 0.0);
}

TEST(FlowPredictorEdgeCases, QosClassSurvivesObservePredictRoundTrips) {
  tm::FlowPredictor p(tm::PredictorKind::kEwma, 0.4);
  tm::TrafficMatrix m;
  for (std::uint32_t i = 0; i < 9; ++i) {
    tm::EndpointDemand d;
    d.src = tm::make_endpoint(i % 3, i);
    d.dst = tm::make_endpoint((i + 1) % 3, i);
    d.demand_gbps = 1.0 + i;
    d.qos = static_cast<tm::QosClass>(1 + i % 3);
    m.add(d);
  }
  p.observe(m);
  p.observe(m);  // a second round trip must not disturb classes

  const tm::TrafficMatrix pred = p.predict();
  std::size_t checked = 0;
  for (const auto& [pair, flows] : pred.pairs()) {
    for (const tm::EndpointDemand& f : flows) {
      const std::uint32_t i = tm::endpoint_index(f.src);
      EXPECT_EQ(f.qos, static_cast<tm::QosClass>(1 + i % 3))
          << "flow " << i;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 9u);
}

// ===========================================================================
// Part 5 — training-loop concurrency (TSan target).
// ===========================================================================

TEST(LearnedConcurrency, ConcurrentObserveAndAllocate) {
  auto s = testing::make_scenario(6, 10, 2, 0.3, 47);
  const te::TeProblem problem = s->problem();
  te::MegaTeSolver exact;
  const te::TeSolution sol = exact.solve(problem, {}).solution;

  te::LearnedAllocator allocator;
  util::ThreadPool pool(2);
  std::thread trainer([&] {
    for (int i = 0; i < 50; ++i) allocator.observe(problem, sol);
  });
  std::thread predictor([&] {
    for (int i = 0; i < 50; ++i) {
      const te::TeSolution got = allocator.allocate(problem, &pool);
      ASSERT_GE(got.satisfied_gbps, 0.0);
    }
  });
  std::thread reader([&] {
    double acc = 0.0;
    for (int i = 0; i < 50; ++i) {
      acc += allocator.exact_satisfied_fraction();
      acc += allocator.drift_mape(*problem.traffic);
      acc += static_cast<double>(allocator.observations());
      acc += allocator.theta()[0];
    }
    ASSERT_GE(acc, 0.0);
  });
  trainer.join();
  predictor.join();
  reader.join();
  EXPECT_EQ(allocator.observations(), 50u);
}

}  // namespace
}  // namespace megate
