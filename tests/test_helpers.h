#pragma once
// Shared fixtures for the TE-layer tests: a small deterministic WAN with
// endpoints, tunnels and a traffic matrix sized so solutions are neither
// trivially full nor empty.

#include <memory>

#include "megate/te/types.h"
#include "megate/tm/endpoints.h"
#include "megate/tm/traffic.h"
#include "megate/topo/generators.h"
#include "megate/topo/tunnels.h"

namespace megate::testing {

struct Scenario {
  topo::Graph graph;
  topo::TunnelSet tunnels;
  tm::TrafficMatrix traffic;

  te::TeProblem problem() const {
    te::TeProblem p;
    p.graph = &graph;
    p.tunnels = &tunnels;
    p.traffic = &traffic;
    return p;
  }
};

/// `load` scales total demand relative to total link capacity; ~0.15
/// produces the partially-satisfiable regime the paper's plots live in.
inline std::unique_ptr<Scenario> make_scenario(std::uint32_t sites,
                                               std::uint32_t links,
                                               std::uint32_t eps_per_site,
                                               double load = 0.15,
                                               std::uint64_t seed = 42) {
  auto s = std::make_unique<Scenario>();
  topo::GeneratorOptions gopt;
  gopt.seed = seed;
  s->graph = topo::make_isp_like(sites, links, gopt);
  topo::TunnelOptions topt;
  topt.tunnels_per_pair = 3;
  s->tunnels = topo::build_tunnels(s->graph, topt);
  tm::EndpointLayout layout(
      std::vector<std::uint32_t>(s->graph.num_nodes(), eps_per_site));
  tm::TrafficOptions topts;
  topts.flows_per_endpoint = 1.5;
  topts.target_total_gbps = tm::total_link_capacity_gbps(s->graph) * load;
  s->traffic = tm::generate_traffic(s->graph, layout, topts, seed + 1);
  return s;
}

}  // namespace megate::testing
