// Tests for megate::sim — flow-level latency, the failure timeline
// (Fig. 12) and the production scenarios (Figs. 2, 15-17).

#include <gtest/gtest.h>

#include "megate/sim/failure_sim.h"
#include "megate/sim/flow_sim.h"
#include "megate/sim/production.h"
#include "megate/te/baselines.h"
#include "megate/te/megate_solver.h"
#include "test_helpers.h"

namespace megate::sim {
namespace {

using megate::testing::make_scenario;

// --- flow sim ----------------------------------------------------------

TEST(FlowSim, LatencyAtLeastPropagation) {
  auto s = make_scenario(8, 14, 20, 0.3);
  te::MegaTeSolver solver;
  te::TeSolution sol = solver.solve(s->problem(), {}).solution;
  FlowSimResult r = simulate_flows(s->problem(), sol);
  EXPECT_FALSE(r.flows.empty());
  for (const FlowRecord& f : r.flows) {
    if (!f.assigned) continue;
    EXPECT_GT(f.latency_ms, 0.0);
    EXPECT_GE(f.hops, 1.0);
  }
  EXPECT_GT(r.assigned_fraction(), 0.0);
  EXPECT_LE(r.assigned_fraction(), 1.0);
}

TEST(FlowSim, CongestionRaisesLatency) {
  auto light = make_scenario(8, 14, 20, 0.05, 3);
  auto heavy = make_scenario(8, 14, 20, 1.2, 3);
  te::MegaTeSolver solver;
  te::TeSolution sol_l = solver.solve(light->problem(), {}).solution;
  te::TeSolution sol_h = solver.solve(heavy->problem(), {}).solution;
  FlowSimResult rl = simulate_flows(light->problem(), sol_l);
  FlowSimResult rh = simulate_flows(heavy->problem(), sol_h);
  // Same topology/seed: queueing under heavy load adds delay on top of
  // identical propagation floors.
  EXPECT_GE(rh.mean_latency_ms() + 1e-9, rl.mean_latency_ms() * 0.9);
  EXPECT_LT(rh.assigned_fraction(), rl.assigned_fraction());
}

TEST(FlowSim, MeanHelpersFilterByQos) {
  auto s = make_scenario(8, 14, 20, 0.3);
  te::MegaTeSolver solver;
  te::TeSolution sol = solver.solve(s->problem(), {}).solution;
  FlowSimResult r = simulate_flows(s->problem(), sol);
  const double all = r.mean_latency_ms(0);
  EXPECT_GT(all, 0.0);
  // The filtered means exist for each class that has assigned flows.
  for (int q = 1; q <= 3; ++q) {
    const double m = r.mean_latency_ms(q);
    EXPECT_GE(m, 0.0);
  }
}

// --- failure sim ----------------------------------------------------------

TEST(FailureSim, FastRecomputeLosesLess) {
  auto s = make_scenario(10, 18, 20, 0.4, 9);
  te::MegaTeSolver megate;
  FailureScenarioOptions opt;
  opt.num_failures = 2;
  // Same solver, but once pretending it needs 100 s to recompute (the
  // paper's NCFlow figure): the windowed satisfied demand must drop.
  FailureOutcome fast = run_failure_scenario(s->graph, s->tunnels,
                                             s->traffic, megate, opt, 0.5);
  FailureOutcome slow = run_failure_scenario(s->graph, s->tunnels,
                                             s->traffic, megate, opt, 100.0);
  EXPECT_NEAR(fast.post_failure_satisfied, slow.post_failure_satisfied,
              1e-9);
  EXPECT_GT(fast.windowed_satisfied, slow.windowed_satisfied);
  EXPECT_DOUBLE_EQ(slow.outage_s, 100.0 + opt.sync_delay_s);
}

TEST(FailureSim, GraphRestoredAfterScenario) {
  auto s = make_scenario(10, 18, 10, 0.3);
  const std::size_t links_up = s->graph.num_links_up();
  te::MegaTeSolver megate;
  FailureScenarioOptions opt;
  run_failure_scenario(s->graph, s->tunnels, s->traffic, megate, opt);
  EXPECT_EQ(s->graph.num_links_up(), links_up);
}

TEST(FailureSim, WindowedBetweenZeroAndPre) {
  auto s = make_scenario(10, 18, 20, 0.5, 4);
  te::MegaTeSolver megate;
  FailureScenarioOptions opt;
  opt.num_failures = 3;
  FailureOutcome out =
      run_failure_scenario(s->graph, s->tunnels, s->traffic, megate, opt);
  EXPECT_GE(out.windowed_satisfied, 0.0);
  EXPECT_LE(out.windowed_satisfied,
            std::max(out.pre_failure_satisfied, out.post_failure_satisfied) +
                1e-9);
  EXPECT_GT(out.recompute_s, 0.0);
}

TEST(FailureSim, MoreFailuresNoBetter) {
  auto s = make_scenario(10, 18, 20, 0.5, 8);
  te::MegaTeSolver megate;
  FailureScenarioOptions two;
  two.num_failures = 2;
  FailureScenarioOptions five;
  five.num_failures = 5;
  FailureOutcome o2 =
      run_failure_scenario(s->graph, s->tunnels, s->traffic, megate, two);
  FailureOutcome o5 =
      run_failure_scenario(s->graph, s->tunnels, s->traffic, megate, five);
  EXPECT_LE(o5.post_failure_satisfied, o2.post_failure_satisfied + 0.05);
}

// --- production scenarios ---------------------------------------------------

TEST(Production, DefaultScenarioShapes) {
  auto sc = ProductionScenario::default_scenario();
  ASSERT_EQ(sc.tunnels.size(), 3u);
  double share = 0.0;
  for (const auto& t : sc.tunnels) share += t.conventional_share;
  EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST(Production, MegaTePinsByClass) {
  auto sc = ProductionScenario::default_scenario();
  const std::size_t q1 = sc.megate_tunnel_for(tm::QosClass::kClass1);
  const std::size_t q3 = sc.megate_tunnel_for(tm::QosClass::kClass3);
  // Class 1 -> lowest latency; class 3 -> cheapest.
  for (const auto& t : sc.tunnels) {
    EXPECT_LE(sc.tunnels[q1].latency_ms, t.latency_ms);
    EXPECT_LE(sc.tunnels[q3].cost_per_gbps, t.cost_per_gbps);
  }
}

TEST(Production, HashTunnelDeterministicAndDistributed) {
  auto sc = ProductionScenario::default_scenario();
  std::size_t counts[3] = {0, 0, 0};
  for (std::uint64_t f = 0; f < 3000; ++f) {
    const std::size_t t = sc.hash_tunnel(f, 1);
    ASSERT_LT(t, 3u);
    EXPECT_EQ(sc.hash_tunnel(f, 1), t);
    counts[t]++;
  }
  // Shares 0.55/0.44/0.01 should be visible in the distribution.
  EXPECT_GT(counts[0], counts[2]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_NEAR(static_cast<double>(counts[0]) / 3000.0, 0.55, 0.05);
}

TEST(Production, Fig2LatencySpreadIsBimodal) {
  auto sc = ProductionScenario::default_scenario();
  auto stats = conventional_latency_day(sc, 4, /*seed=*/20240804);
  ASSERT_EQ(stats.size(), 4u);
  bool some_pair_bimodal = false;
  for (const auto& p : stats) {
    ASSERT_EQ(p.samples_ms.size(), 288u);  // one day of 5-min samples
    // All samples near one of the tunnel latencies.
    for (double s : p.samples_ms) {
      const bool near20 = std::abs(s - 20.0) < 4.0;
      const bool near42 = std::abs(s - 42.0) < 4.0;
      const bool near30 = std::abs(s - 30.0) < 4.0;
      EXPECT_TRUE(near20 || near42 || near30);
    }
    if (p.p75 - p.p25 > 10.0) some_pair_bimodal = true;
  }
  EXPECT_TRUE(some_pair_bimodal)
      << "at least one pair should straddle the 20/42 ms tunnels";
}

TEST(Production, Fig15MegaTeReducesLatencyForAllApps) {
  auto sc = ProductionScenario::default_scenario();
  auto results = evaluate_app_latency(sc, fig15_apps(), 20240804);
  ASSERT_EQ(results.size(), 5u);
  double best = 0.0;
  for (const auto& r : results) {
    EXPECT_LE(r.megate_ms, r.conventional_ms + 1e-9) << r.app;
    EXPECT_GE(r.reduction_pct, 0.0);
    best = std::max(best, r.reduction_pct);
  }
  // Paper: reductions up to ~51%; with 20->42 ms tunnels the ceiling is
  // 52.4%, and some app should get a large share of it.
  EXPECT_GT(best, 30.0);
  EXPECT_LE(best, 52.5);
}

TEST(Production, Fig16AvailabilityImprovesAfterRollout) {
  auto sc = ProductionScenario::default_scenario();
  auto points = evaluate_availability(sc, 42);
  ASSERT_EQ(points.size(), 6u);
  EXPECT_FALSE(points[0].megate_deployed);  // Oct '22
  EXPECT_TRUE(points[2].megate_deployed);   // Dec '22 rollout
  for (const auto& p : points) {
    if (p.megate_deployed) {
      EXPECT_GE(p.app6_availability, 0.9999)
          << p.month << ": QoS-1 pinned to the premium path";
      EXPECT_GE(p.app7_availability, 0.97);
      EXPECT_LT(p.app7_availability, p.app6_availability)
          << "class 3 rides the cheap path";
    } else {
      EXPECT_LT(p.app6_availability, 0.9999)
          << "hash mixing drags class 1 below its requirement";
    }
  }
}

TEST(Production, Fig17BulkCostHalvesAfterRollout) {
  auto sc = ProductionScenario::default_scenario();
  auto points = evaluate_cost(sc, 42);
  ASSERT_EQ(points.size(), 6u);
  double before = 0.0, after = 0.0;
  int nb = 0, na = 0;
  for (const auto& p : points) {
    if (p.megate_deployed) {
      after += p.app9_cost;
      ++na;
    } else {
      before += p.app9_cost;
      ++nb;
    }
  }
  before /= nb;
  after /= na;
  EXPECT_NEAR(after / before, 0.5, 0.08) << "paper: -50% for App 9";
}

TEST(Production, Fig17GamingCostStable) {
  auto sc = ProductionScenario::default_scenario();
  auto points = evaluate_cost(sc, 42);
  double before = 0.0, after = 0.0;
  int nb = 0, na = 0;
  for (const auto& p : points) {
    (p.megate_deployed ? after : before) += p.app8_cost;
    (p.megate_deployed ? na : nb) += 1;
  }
  EXPECT_NEAR((after / na) / (before / nb), 1.0, 0.1)
      << "class-1 app stays on the premium path";
}

}  // namespace
}  // namespace megate::sim
