// End-to-end integration: topology -> endpoints -> traffic -> MegaTE
// two-stage solve -> controller publish -> agent pull -> host-stack SR
// encapsulation -> router-by-router forwarding along the chosen tunnel.
// This is the full control loop of Fig. 3(b) exercised in one process.

#include <gtest/gtest.h>

#include "megate/ctrl/agent.h"
#include "megate/ctrl/controller.h"
#include "megate/ctrl/kvstore.h"
#include "megate/dataplane/host_stack.h"
#include "megate/dataplane/router.h"
#include "megate/sim/failure_sim.h"
#include "megate/te/checker.h"
#include "megate/te/megate_solver.h"
#include "test_helpers.h"

namespace megate {
namespace {

using megate::testing::make_scenario;

struct AssignedFlow {
  topo::SitePair pair;
  tm::EndpointDemand demand;
  std::int32_t tunnel = -1;
};

/// An assigned flow whose (source instance, destination site) is unique,
/// so the controller's published route is exactly this flow's tunnel.
AssignedFlow first_assigned(const testing::Scenario& s,
                            const te::TeSolution& sol) {
  std::unordered_map<std::uint64_t, int> key_count;
  auto key_of = [](tm::EndpointId src, topo::NodeId dst_site) {
    return src * 1000003ull + dst_site;
  };
  for (const auto& [pair, flows] : s.traffic.pairs()) {
    for (const auto& f : flows) key_count[key_of(f.src, pair.dst)]++;
  }
  for (const auto& [pair, alloc] : sol.pairs) {
    auto it = s.traffic.pairs().find(pair);
    if (it == s.traffic.pairs().end()) continue;
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (alloc.flow_tunnel[i] >= 0 &&
          key_count[key_of(it->second[i].src, pair.dst)] == 1) {
        return {pair, it->second[i], alloc.flow_tunnel[i]};
      }
    }
  }
  return {};
}

TEST(Integration, FullControlLoopDeliversPacketsAlongChosenTunnel) {
  auto s = make_scenario(8, 14, 10, 0.2, 77);
  te::TeProblem problem = s->problem();

  // --- control plane: solve + publish -----------------------------------
  te::MegaTeSolver solver;
  te::TeSolution sol = solver.solve(problem, {}).solution;
  te::CheckOptions copt;
  copt.require_flow_assignment = true;
  ASSERT_TRUE(te::check_solution(problem, sol, copt).ok);

  ctrl::KvStore kv(2);
  ctrl::Controller controller(&kv);
  controller.publish_solution(problem, sol);

  // --- pick one assigned flow and bring up its endpoint ------------------
  AssignedFlow flow = first_assigned(*s, sol);
  ASSERT_GE(flow.tunnel, 0) << "no flow assigned at this load";

  dataplane::HostStack stack;
  const dataplane::Pid pid = 4242;
  stack.on_sys_enter_execve(pid, flow.demand.src);
  dataplane::FiveTuple tuple;
  // Overlay IPs follow the library convention: destination site in the
  // top bits, so the TC program can pick the per-destination route.
  tuple.src_ip = dataplane::make_overlay_ip(
      tm::endpoint_site(flow.demand.src),
      tm::endpoint_index(flow.demand.src));
  tuple.dst_ip = dataplane::make_overlay_ip(
      tm::endpoint_site(flow.demand.dst),
      tm::endpoint_index(flow.demand.dst));
  tuple.proto = dataplane::kProtoUdp;
  tuple.src_port = 33333;
  tuple.dst_port = 443;
  stack.on_conntrack_event(tuple, pid);

  // --- bottom-up sync: the agent pulls the published route table ---------
  ctrl::AgentOptions aopt;
  aopt.poll_interval_s = 1.0;
  ctrl::EndpointAgent agent(flow.demand.src, &kv, &stack, aopt);
  agent.tick(5.0);
  ASSERT_EQ(agent.applied_version(), kv.version());
  ASSERT_FALSE(agent.hops_for(flow.pair.dst).empty());

  // --- data plane: encapsulate and walk the routers ----------------------
  dataplane::Buffer frame;
  dataplane::EthernetHeader eth;
  eth.serialize(frame);
  dataplane::Ipv4Header ip;
  ip.protocol = dataplane::kProtoUdp;
  ip.src_ip = tuple.src_ip;
  ip.dst_ip = tuple.dst_ip;
  ip.total_length =
      dataplane::kIpv4HeaderSize + dataplane::kUdpHeaderSize + 32;
  ip.serialize(frame);
  dataplane::UdpHeader udp;
  udp.src_port = tuple.src_port;
  udp.dst_port = tuple.dst_port;
  udp.length = dataplane::kUdpHeaderSize + 32;
  udp.serialize(frame);
  frame.insert(frame.end(), 32, 0x55);

  auto verdict = stack.tc_egress(frame, 0x0A0A0A0A);
  ASSERT_EQ(verdict.action, dataplane::TcVerdict::Action::kEncapsulated);

  // The SR hop list must equal the chosen tunnel's site sequence.
  const auto& tunnel =
      s->tunnels.tunnels(flow.pair.src, flow.pair.dst)[flow.tunnel];
  std::vector<std::uint32_t> expected_hops;
  for (topo::EdgeId e : tunnel.links) {
    expected_hops.push_back(s->graph.link(e).dst);
  }
  EXPECT_EQ(agent.hops_for(flow.pair.dst), expected_hops);

  // Walk the packet through the routers of the hop list: each segment
  // router advances the offset and points at the next segment; the final
  // segment (the destination site) delivers locally.
  dataplane::Buffer pkt = verdict.packet;
  for (std::size_t hop = 0; hop < expected_hops.size(); ++hop) {
    dataplane::Router router(expected_hops[hop], 4);
    auto d = router.forward(pkt);
    if (hop + 1 < expected_hops.size()) {
      ASSERT_EQ(d.kind, dataplane::ForwardDecision::Kind::kSegmentRouted);
      EXPECT_EQ(d.next_hop, expected_hops[hop + 1]);
    } else {
      ASSERT_EQ(d.kind, dataplane::ForwardDecision::Kind::kDeliverLocal);
      EXPECT_EQ(d.next_hop, flow.pair.dst);
    }
    pkt = d.packet;
  }

  // --- telemetry: the stack accounted the flow to the right instance -----
  auto report = stack.collect_flow_report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].instance, flow.demand.src);
  EXPECT_EQ(report[0].packets, 1u);
}

TEST(Integration, FailureRecomputePublishesNewPaths) {
  auto s = make_scenario(9, 16, 10, 0.25, 31);
  te::TeProblem problem = s->problem();
  te::MegaTeSolver solver;
  te::TeSolution before = solver.solve(problem, {}).solution;

  ctrl::KvStore kv(2);
  ctrl::Controller controller(&kv);
  controller.publish_solution(problem, before);
  const ctrl::Version v1 = kv.version();

  // Fail links, repair tunnels, re-solve, republish.
  auto events = topo::inject_link_failures(s->graph, 2, 5);
  ASSERT_FALSE(events.empty());
  topo::repair_tunnels(s->graph, s->tunnels);
  te::TeSolution after = solver.solve(problem, {}).solution;
  te::CheckOptions copt;
  copt.require_flow_assignment = true;
  EXPECT_TRUE(te::check_solution(problem, after, copt).ok);
  controller.publish_solution(problem, after);
  EXPECT_GT(kv.version(), v1);

  // An agent that polls after the republish converges to the new version.
  ctrl::AgentOptions aopt;
  aopt.poll_interval_s = 1.0;
  ctrl::EndpointAgent agent(1, &kv, nullptr, aopt);
  agent.tick(3.0);
  EXPECT_EQ(agent.applied_version(), kv.version());
  topo::restore_failures(s->graph, events);
}

TEST(Integration, EndToEndMetricsConsistency) {
  auto s = make_scenario(8, 14, 15, 0.35, 13);
  te::TeProblem problem = s->problem();
  te::MegaTeSolver solver;
  te::TeSolution sol = solver.solve(problem, {}).solution;

  // satisfied_gbps equals the sum over assigned flows.
  double manual = 0.0;
  for (const auto& [pair, alloc] : sol.pairs) {
    auto it = s->traffic.pairs().find(pair);
    if (it == s->traffic.pairs().end()) continue;
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (alloc.flow_tunnel[i] >= 0) manual += it->second[i].demand_gbps;
    }
  }
  EXPECT_NEAR(manual, sol.satisfied_gbps, 1e-6);
  // tunnel_alloc sums match assigned flow sums (aggregate consistency).
  for (const auto& [pair, alloc] : sol.pairs) {
    double from_allocs = 0.0;
    for (double f : alloc.tunnel_alloc) from_allocs += f;
    double from_flows = 0.0;
    auto it = s->traffic.pairs().find(pair);
    if (it == s->traffic.pairs().end()) continue;
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (alloc.flow_tunnel[i] >= 0) from_flows += it->second[i].demand_gbps;
    }
    EXPECT_NEAR(from_allocs, from_flows, 1e-6);
  }
}

}  // namespace
}  // namespace megate
