// Tests for megate::te — MaxSiteFlow (both backends), the solution
// checker, and the MegaTE two-stage solver's paper constraints (1a)-(1c),
// QoS sequencing and near-optimality.

#include <gtest/gtest.h>

#include "megate/te/checker.h"
#include "megate/te/megate_solver.h"
#include "megate/te/site_lp.h"
#include "megate/topo/failures.h"
#include "test_helpers.h"

namespace megate::te {
namespace {

using megate::testing::Scenario;
using megate::testing::make_scenario;

// --- MaxSiteFlow -----------------------------------------------------------

TEST(SiteLp, SimplexAndPackingAgree) {
  auto s = make_scenario(8, 14, 20, 0.2);
  auto demands = s->traffic.site_demands();
  SiteLpOptions simplex_opt;
  simplex_opt.backend = SiteLpOptions::Backend::kSimplex;
  SiteLpOptions packing_opt;
  packing_opt.backend = SiteLpOptions::Backend::kPacking;
  packing_opt.packing_epsilon = 0.05;

  auto exact = solve_max_site_flow(s->graph, s->tunnels, demands, {}, 1e-3,
                                   simplex_opt);
  auto approx = solve_max_site_flow(s->graph, s->tunnels, demands, {}, 1e-3,
                                    packing_opt);
  ASSERT_EQ(exact.status, lp::Status::kOptimal);
  ASSERT_EQ(approx.status, lp::Status::kOptimal);
  EXPECT_TRUE(exact.used_simplex);
  EXPECT_FALSE(approx.used_simplex);
  EXPECT_GE(approx.objective, 0.85 * exact.objective);
  EXPECT_LE(approx.objective, exact.objective * 1.0 + 1e-6);
}

TEST(SiteLp, RespectsDemandCaps) {
  auto s = make_scenario(6, 10, 10, 0.1);
  auto demands = s->traffic.site_demands();
  auto res = solve_max_site_flow(s->graph, s->tunnels, demands, {}, 1e-3);
  for (const auto& [pair, alloc] : res.alloc) {
    double sum = 0.0;
    for (double f : alloc) sum += f;
    EXPECT_LE(sum, demands.at(pair) * (1.0 + 1e-6));
  }
}

TEST(SiteLp, RespectsLinkCapacities) {
  auto s = make_scenario(6, 10, 40, 0.8);  // heavy load
  auto demands = s->traffic.site_demands();
  auto res = solve_max_site_flow(s->graph, s->tunnels, demands, {}, 1e-3);
  std::vector<double> usage(s->graph.num_links(), 0.0);
  for (const auto& [pair, alloc] : res.alloc) {
    const auto& ts = s->tunnels.tunnels(pair.src, pair.dst);
    for (std::size_t t = 0; t < alloc.size(); ++t) {
      for (topo::EdgeId e : ts[t].links) usage[e] += alloc[t];
    }
  }
  for (topo::EdgeId e = 0; e < s->graph.num_links(); ++e) {
    EXPECT_LE(usage[e], s->graph.link(e).capacity_gbps * (1 + 1e-6));
  }
}

TEST(SiteLp, CapacityOverrideShrinksAllocation) {
  auto s = make_scenario(6, 10, 40, 0.8);
  auto demands = s->traffic.site_demands();
  auto full = solve_max_site_flow(s->graph, s->tunnels, demands, {}, 1e-3);
  std::vector<double> half(s->graph.num_links());
  for (topo::EdgeId e = 0; e < s->graph.num_links(); ++e) {
    half[e] = s->graph.link(e).capacity_gbps * 0.5;
  }
  auto halved =
      solve_max_site_flow(s->graph, s->tunnels, demands, half, 1e-3);
  EXPECT_LT(halved.objective, full.objective);
}

TEST(SiteLp, RejectsBadOverrideSize) {
  auto s = make_scenario(4, 6, 5);
  auto demands = s->traffic.site_demands();
  std::vector<double> wrong(3, 1.0);
  EXPECT_THROW(
      solve_max_site_flow(s->graph, s->tunnels, demands, wrong, 1e-3),
      std::invalid_argument);
}

TEST(SiteLp, EmptyDemandsYieldEmptyAllocation) {
  auto s = make_scenario(4, 6, 5);
  std::unordered_map<topo::SitePair, double, topo::SitePairHash> none;
  auto res = solve_max_site_flow(s->graph, s->tunnels, none, {}, 1e-3);
  EXPECT_EQ(res.status, lp::Status::kOptimal);
  EXPECT_TRUE(res.alloc.empty());
}

TEST(SiteLp, EpsilonPrefersShortTunnels) {
  // One pair, ample capacity: with a nonzero epsilon all flow must land
  // on the weight-1 tunnel.
  auto s = make_scenario(6, 12, 10, 0.05);
  auto demands = s->traffic.site_demands();
  auto res = solve_max_site_flow(s->graph, s->tunnels, demands, {}, 1e-2);
  std::size_t on_best = 0, on_rest = 0;
  for (const auto& [pair, alloc] : res.alloc) {
    for (std::size_t t = 0; t < alloc.size(); ++t) {
      if (alloc[t] > 1e-9) (t == 0 ? on_best : on_rest) += 1;
    }
  }
  EXPECT_GT(on_best, on_rest);  // light load: shortest tunnels dominate
}

// --- checker ---------------------------------------------------------------

TEST(Checker, AcceptsEmptySolution) {
  auto s = make_scenario(4, 6, 5);
  TeSolution sol;
  sol.total_demand_gbps = s->traffic.total_demand_gbps();
  auto res = check_solution(s->problem(), sol);
  EXPECT_TRUE(res.ok) << res.violations.front();
}

TEST(Checker, FlagsOverloadedLink) {
  auto s = make_scenario(4, 6, 5);
  TeSolution sol;
  // Grab any traffic pair and allocate far beyond capacity.
  ASSERT_FALSE(s->traffic.pairs().empty());
  const auto& [pair, flows] = *s->traffic.pairs().begin();
  PairAllocation alloc;
  alloc.tunnel_alloc.assign(s->tunnels.tunnels(pair.src, pair.dst).size(),
                            0.0);
  alloc.tunnel_alloc[0] = 1e9;
  sol.pairs[pair] = alloc;
  auto res = check_solution(s->problem(), sol);
  EXPECT_FALSE(res.ok);
  EXPECT_GT(res.max_link_utilization, 1.0);
}

TEST(Checker, FlagsAssignmentToDeadTunnel) {
  auto s = make_scenario(4, 6, 5);
  ASSERT_FALSE(s->traffic.pairs().empty());
  const auto& [pair, flows] = *s->traffic.pairs().begin();
  const auto& ts = s->tunnels.tunnels(pair.src, pair.dst);
  ASSERT_FALSE(ts.empty());
  s->graph.set_link_state(ts[0].links.front(), false);
  TeSolution sol;
  PairAllocation alloc;
  alloc.tunnel_alloc.assign(ts.size(), 0.0);
  alloc.flow_tunnel.assign(flows.size(), 0);  // everyone on dead tunnel 0
  sol.pairs[pair] = alloc;
  auto res = check_solution(s->problem(), sol);
  EXPECT_FALSE(res.ok);
}

TEST(Checker, FlagsOutOfRangeTunnelIndex) {
  auto s = make_scenario(4, 6, 5);
  const auto& [pair, flows] = *s->traffic.pairs().begin();
  TeSolution sol;
  PairAllocation alloc;
  alloc.tunnel_alloc.assign(s->tunnels.tunnels(pair.src, pair.dst).size(),
                            0.0);
  alloc.flow_tunnel.assign(flows.size(), 99);  // nonexistent tunnel
  sol.pairs[pair] = alloc;
  EXPECT_FALSE(check_solution(s->problem(), sol).ok);
}

TEST(Checker, FlagsSatisfiedAboveTotal) {
  auto s = make_scenario(4, 6, 5);
  TeSolution sol;
  sol.total_demand_gbps = 10.0;
  sol.satisfied_gbps = 20.0;
  EXPECT_FALSE(check_solution(s->problem(), sol).ok);
}

TEST(Checker, RequireFlowAssignmentOption) {
  auto s = make_scenario(4, 6, 5);
  const auto& [pair, flows] = *s->traffic.pairs().begin();
  TeSolution sol;
  PairAllocation alloc;
  alloc.tunnel_alloc.assign(s->tunnels.tunnels(pair.src, pair.dst).size(),
                            0.0);
  sol.pairs[pair] = alloc;  // fractional only
  CheckOptions opt;
  opt.require_flow_assignment = true;
  EXPECT_FALSE(check_solution(s->problem(), sol, opt).ok);
}

// --- MegaTE solver -----------------------------------------------------------

class MegaTeSuite : public ::testing::TestWithParam<double> {};

TEST_P(MegaTeSuite, SatisfiesPaperConstraintsAcrossLoads) {
  const double load = GetParam();
  auto s = make_scenario(10, 18, 30, load);
  MegaTeSolver solver;
  TeSolution sol = solver.solve(s->problem(), {}).solution;
  CheckOptions opt;
  opt.require_flow_assignment = true;
  auto res = check_solution(s->problem(), sol, opt);
  EXPECT_TRUE(res.ok) << (res.violations.empty() ? ""
                                                 : res.violations.front());
  EXPECT_GT(sol.satisfied_gbps, 0.0);
  EXPECT_LE(sol.satisfied_ratio(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Loads, MegaTeSuite,
                         ::testing::Values(0.05, 0.15, 0.4, 0.8, 1.5));

TEST(MegaTe, NearSiteLpOptimum) {
  auto s = make_scenario(8, 14, 40, 0.3);
  MegaTeSolver solver;
  TeSolution sol = solver.solve(s->problem(), {}).solution;
  // The fractional site LP upper-bounds any indivisible assignment.
  auto demands = s->traffic.site_demands();
  SiteLpOptions lp_opt;
  lp_opt.backend = SiteLpOptions::Backend::kSimplex;
  auto bound =
      solve_max_site_flow(s->graph, s->tunnels, demands, {}, 0.0, lp_opt);
  double lp_total = 0.0;
  for (const auto& [pair, alloc] : bound.alloc) {
    for (double f : alloc) lp_total += f;
  }
  EXPECT_LE(sol.satisfied_gbps, lp_total * (1.0 + 1e-6));
  EXPECT_GE(sol.satisfied_gbps, 0.85 * lp_total)
      << "MegaTE should be near the fractional optimum";
}

TEST(MegaTe, LightLoadSatisfiesAlmostEverything) {
  auto s = make_scenario(8, 14, 20, 0.03);
  MegaTeSolver solver;
  TeSolution sol = solver.solve(s->problem(), {}).solution;
  EXPECT_GT(sol.satisfied_ratio(), 0.95);
}

TEST(MegaTe, FlowsAreIndivisible) {
  auto s = make_scenario(8, 14, 30, 0.3);
  MegaTeSolver solver;
  TeSolution sol = solver.solve(s->problem(), {}).solution;
  // Every flow is either unassigned or on exactly one tunnel — encoded by
  // the single index per flow; verify vector shape matches the traffic.
  for (const auto& [pair, flows] : s->traffic.pairs()) {
    const auto& alloc = sol.pairs.at(pair);
    EXPECT_EQ(alloc.flow_tunnel.size(), flows.size());
  }
}

TEST(MegaTe, QosSequencingPutsClass1OnShortTunnels) {
  auto s = make_scenario(10, 18, 60, 0.9, 7);  // congested
  MegaTeOptions seq_opt;
  seq_opt.qos_sequencing = true;
  MegaTeSolver seq(seq_opt);
  TeSolution with_seq = seq.solve(s->problem(), {}).solution;

  MegaTeOptions flat_opt;
  flat_opt.qos_sequencing = false;
  MegaTeSolver flat(flat_opt);
  TeSolution without = flat.solve(s->problem(), {}).solution;

  const double lat_seq = mean_latency_ms(s->problem(), with_seq, 1);
  const double lat_flat = mean_latency_ms(s->problem(), without, 1);
  // With sequencing, class 1 is allocated first on uncontended capacity
  // and FastSSP walks tunnels in ascending weight (= latency), so class-1
  // *latency* must not be worse than the QoS-blind run. (Hop count is not
  // a valid proxy here: the lowest-latency tunnel can have more hops.)
  EXPECT_LE(lat_seq, lat_flat * 1.05 + 0.1);

  // Class-1 demand should be satisfied at a higher rate than class 3.
  double q1_total = 0, q1_ok = 0, q3_total = 0, q3_ok = 0;
  for (const auto& [pair, flows] : s->traffic.pairs()) {
    const auto& alloc = with_seq.pairs.at(pair);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const double d = flows[i].demand_gbps;
      if (flows[i].qos == tm::QosClass::kClass1) {
        q1_total += d;
        if (alloc.flow_tunnel[i] >= 0) q1_ok += d;
      } else if (flows[i].qos == tm::QosClass::kClass3) {
        q3_total += d;
        if (alloc.flow_tunnel[i] >= 0) q3_ok += d;
      }
    }
  }
  ASSERT_GT(q1_total, 0.0);
  ASSERT_GT(q3_total, 0.0);
  EXPECT_GE(q1_ok / q1_total, q3_ok / q3_total - 0.02);
}

TEST(MegaTe, DeterministicAcrossRuns) {
  auto s = make_scenario(8, 14, 30, 0.3);
  MegaTeOptions opt;
  opt.threads = 1;  // single-threaded for bit-stable accumulation order
  MegaTeSolver a(opt), b(opt);
  TeSolution sa = a.solve(s->problem(), {}).solution;
  TeSolution sb = b.solve(s->problem(), {}).solution;
  EXPECT_DOUBLE_EQ(sa.satisfied_gbps, sb.satisfied_gbps);
}

TEST(MegaTe, ParallelMatchesSerialSatisfaction) {
  auto s = make_scenario(8, 14, 30, 0.3);
  MegaTeOptions serial_opt;
  serial_opt.threads = 1;
  MegaTeOptions par_opt;
  par_opt.threads = 4;
  TeSolution serial = MegaTeSolver(serial_opt).solve(s->problem(), {}).solution;
  TeSolution parallel = MegaTeSolver(par_opt).solve(s->problem(), {}).solution;
  // Per-pair stage 2 is independent across pairs, so results agree.
  EXPECT_NEAR(serial.satisfied_gbps, parallel.satisfied_gbps, 1e-6);
}

TEST(MegaTe, StageTimersPopulated) {
  auto s = make_scenario(8, 14, 30, 0.3);
  MegaTeSolver solver;
  const SolveReport report = solver.solve(s->problem(), SolveContext{});
  EXPECT_GE(report.stage1_seconds, 0.0);
  EXPECT_GE(report.stage2_seconds, 0.0);
  EXPECT_GE(report.solution.solve_time_s, report.stage1_seconds);
}

TEST(MegaTe, InvalidProblemThrows) {
  MegaTeSolver solver;
  TeProblem bad;  // null pointers
  EXPECT_THROW(solver.solve(bad, {}), std::invalid_argument);
}

TEST(MegaTe, WorksAfterLinkFailures) {
  auto s = make_scenario(10, 18, 30, 0.3);
  auto events = topo::inject_link_failures(s->graph, 2, 99);
  topo::repair_tunnels(s->graph, s->tunnels);
  MegaTeSolver solver;
  TeSolution sol = solver.solve(s->problem(), {}).solution;
  CheckOptions opt;
  opt.require_flow_assignment = true;
  auto res = check_solution(s->problem(), sol, opt);
  EXPECT_TRUE(res.ok) << (res.violations.empty() ? ""
                                                 : res.violations.front());
  topo::restore_failures(s->graph, events);
}

}  // namespace
}  // namespace megate::te
