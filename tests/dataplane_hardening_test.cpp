// Dataplane hardening suite (ISSUE 3 satellites 1/2/3/4): SR header
// serialize/parse round-trip properties and loud failure on unencodable
// headers, frag_map lifecycle under fragment reorder and loss, the
// overlay-IP boundary round-trips through TelemetryCollector, and a
// fuzz-style sweep of truncated/corrupted VXLAN+SR frames through
// vtep_ingress / tc_egress — no crash (ci.sh runs this under ASan/UBSan)
// and every drop lands in exactly one malformed-frame counter.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "megate/ctrl/telemetry.h"
#include "megate/dataplane/host_stack.h"
#include "megate/dataplane/packet.h"
#include "megate/dataplane/sr_header.h"
#include "megate/dataplane/vxlan.h"
#include "megate/obs/metrics.h"
#include "megate/obs/span.h"
#include "megate/tm/endpoints.h"
#include "megate/util/rng.h"

namespace {

using namespace megate;
using namespace megate::dataplane;

Buffer inner_frame(const FiveTuple& t, std::size_t payload = 64) {
  Buffer b;
  EthernetHeader eth;
  eth.serialize(b);
  Ipv4Header ip;
  ip.protocol = t.proto;
  ip.src_ip = t.src_ip;
  ip.dst_ip = t.dst_ip;
  ip.total_length =
      static_cast<std::uint16_t>(kIpv4HeaderSize + kUdpHeaderSize + payload);
  ip.serialize(b);
  UdpHeader udp;
  udp.src_port = t.src_port;
  udp.dst_port = t.dst_port;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderSize + payload);
  udp.serialize(b);
  b.insert(b.end(), payload, 0xCD);
  return b;
}

/// An IPv4 fragment frame: MF + offset control which piece this is; only
/// offset-0 fragments carry the UDP header.
Buffer fragment_frame(const FiveTuple& t, std::uint16_t ipid,
                      bool more_fragments, std::uint16_t offset_8b,
                      std::size_t payload = 64) {
  Buffer b;
  EthernetHeader eth;
  eth.serialize(b);
  Ipv4Header ip;
  ip.protocol = t.proto;
  ip.src_ip = t.src_ip;
  ip.dst_ip = t.dst_ip;
  ip.identification = ipid;
  ip.more_fragments = more_fragments;
  ip.fragment_offset_8b = offset_8b;
  const bool first = more_fragments && offset_8b == 0;
  const std::size_t l4 = first ? kUdpHeaderSize : 0;
  ip.total_length =
      static_cast<std::uint16_t>(kIpv4HeaderSize + l4 + payload);
  ip.serialize(b);
  if (first) {
    UdpHeader udp;
    udp.src_port = t.src_port;
    udp.dst_port = t.dst_port;
    udp.length = static_cast<std::uint16_t>(kUdpHeaderSize + payload);
    udp.serialize(b);
  }
  b.insert(b.end(), payload, 0xAB);
  return b;
}

FiveTuple flow_tuple(std::uint16_t src_port = 5001) {
  FiveTuple t;
  t.src_ip = 0x0A000001;
  t.dst_ip = make_overlay_ip(9, 123);
  t.proto = kProtoUdp;
  t.src_port = src_port;
  t.dst_port = 443;
  return t;
}

/// A HostStack with one attributed, TE-routed flow.
void attach_flow(HostStack& hs, const FiveTuple& t) {
  hs.on_sys_enter_execve(1, 42);
  hs.on_conntrack_event(t, 1);
  hs.install_route(42, 9, {3, 5, 9});
}

// --- satellite 1: SR header round-trip + loud serialize failure ---------

TEST(SrHardening, RoundTripPropertyAllSizesAndOffsets) {
  util::Rng rng(20240807);
  for (std::size_t n = 1; n <= kSrMaxHops; ++n) {
    SrHeader h;
    for (std::size_t i = 0; i < n; ++i) {
      h.hops.push_back(static_cast<std::uint32_t>(rng.uniform_int(0, 4095)));
    }
    for (std::size_t off = 0; off <= n; ++off) {
      h.offset = static_cast<std::uint8_t>(off);
      ASSERT_TRUE(h.valid());
      Buffer b;
      ASSERT_TRUE(h.serialize(b));
      ASSERT_EQ(b.size(), h.wire_size());
      auto p = SrHeader::parse(b);
      ASSERT_TRUE(p.has_value()) << "n=" << n << " off=" << off;
      EXPECT_EQ(p->offset, h.offset);
      EXPECT_EQ(p->hops, h.hops);
    }
  }
}

TEST(SrHardening, SerializeFailsLoudlyAndLeavesBufferUntouched) {
  Buffer b = {0xAA, 0xBB};  // pre-existing bytes must survive a failure
  const Buffer before = b;

  SrHeader empty;  // no hops
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.serialize(b));
  EXPECT_EQ(b, before);

  SrHeader too_many;
  too_many.hops.assign(kSrMaxHops + 1, 7);
  EXPECT_FALSE(too_many.valid());
  EXPECT_FALSE(too_many.serialize(b));
  EXPECT_EQ(b, before);

  SrHeader bad_offset;
  bad_offset.hops = {1, 2, 3};
  bad_offset.offset = 4;  // > hops.size()
  EXPECT_FALSE(bad_offset.valid());
  EXPECT_FALSE(bad_offset.serialize(b));
  EXPECT_EQ(b, before);
}

TEST(SrHardening, OversizedHopCountNoLongerTruncatesSilently) {
  // The original bug: hops.size() was cast to uint8_t, so 257 hops
  // serialized as hop count 1 and the far side mis-parsed the packet.
  SrHeader h;
  h.hops.assign(257, 9);
  Buffer b;
  EXPECT_FALSE(h.serialize(b));
  EXPECT_TRUE(b.empty());
}

TEST(SrHardening, EgressDropsLoudlyOnUnencodablePlannedRoute) {
  HostStack hs;
  const FiveTuple t = flow_tuple();
  hs.on_sys_enter_execve(1, 42);
  hs.on_conntrack_event(t, 1);
  std::vector<std::uint32_t> long_route(kSrMaxHops + 1, 4);
  hs.install_route(42, 9, long_route);
  auto v = hs.tc_egress(inner_frame(t), 0x0A0000FE);
  // The route was *installed* (planned), so a serialize failure must not
  // silently pass as conventional traffic: it drops with its own reason
  // and counter, visibly distinct from the no-route pass below.
  EXPECT_EQ(v.action, TcVerdict::Action::kDropMalformed);
  EXPECT_EQ(v.drop_reason, DropReason::kSrTooLong);
  EXPECT_EQ(hs.counters().sr_serialize_errors, 1u);
  EXPECT_EQ(hs.counters().egress_route_drops, 1u);
  EXPECT_EQ(hs.counters().egress_encapsulated, 0u);
  EXPECT_EQ(hs.counters().egress_passed, 0u);
  EXPECT_EQ(hs.counters().egress_no_route, 0u);
}

TEST(SrHardening, EgressNoRoutePassIsCountedSeparately) {
  HostStack hs;
  const FiveTuple t = flow_tuple();
  hs.on_sys_enter_execve(1, 42);
  hs.on_conntrack_event(t, 1);
  // No install_route: conventional pass-through, attributed to no_route —
  // previously indistinguishable from the serialize-failure fallback.
  auto v = hs.tc_egress(inner_frame(t), 0x0A0000FE);
  EXPECT_EQ(v.action, TcVerdict::Action::kPass);
  EXPECT_EQ(hs.counters().egress_passed, 1u);
  EXPECT_EQ(hs.counters().egress_no_route, 1u);
  EXPECT_EQ(hs.counters().egress_route_drops, 0u);
  EXPECT_EQ(hs.counters().sr_serialize_errors, 0u);
}

// --- satellite 2: frag_map lifecycle ------------------------------------

TEST(FragHardening, OutOfOrderLastFragmentKeepsMiddlesAttributable) {
  HostStack hs;
  const FiveTuple t = flow_tuple();
  attach_flow(hs, t);

  const std::uint16_t ipid = 0x1234;
  // First fragment registers the tuple.
  auto v1 = hs.tc_egress(fragment_frame(t, ipid, true, 0), 0);
  EXPECT_EQ(hs.frag_map_size(), 1u);
  // Last fragment arrives BEFORE a middle one (reorder).
  auto v3 = hs.tc_egress(fragment_frame(t, ipid, false, 16), 0);
  // The buggy eager-erase dropped the entry here; the middle fragment
  // must still be attributable.
  auto v2 = hs.tc_egress(fragment_frame(t, ipid, true, 8), 0);
  EXPECT_EQ(hs.counters().unattributed_packets, 0u);

  // All three fragments accounted to the flow.
  auto stats = hs.stats_of(t);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->packets, 3u);
  (void)v1; (void)v2; (void)v3;
}

TEST(FragHardening, DroppedLastFragmentDoesNotLeakForever) {
  HostStack hs;
  const FiveTuple t = flow_tuple();
  attach_flow(hs, t);

  // First fragment only; the last fragment is lost in the network.
  hs.tc_egress(fragment_frame(t, 0x2222, true, 0), 0);
  EXPECT_EQ(hs.frag_map_size(), 1u);

  // Entry touched this period: survives the first collection...
  hs.collect_pair_report(/*reset=*/true);
  EXPECT_EQ(hs.frag_map_size(), 1u);
  // ...and is reclaimed after a full idle period.
  hs.collect_pair_report(/*reset=*/true);
  EXPECT_EQ(hs.frag_map_size(), 0u);
  EXPECT_EQ(hs.counters().frag_entries_expired, 1u);
}

TEST(FragHardening, ActiveEntriesSurviveCollections) {
  HostStack hs;
  const FiveTuple t = flow_tuple();
  attach_flow(hs, t);

  hs.tc_egress(fragment_frame(t, 0x3333, true, 0), 0);
  for (int period = 0; period < 3; ++period) {
    // A middle fragment each period refreshes the generation.
    hs.tc_egress(fragment_frame(t, 0x3333, true, 8), 0);
    hs.collect_pair_report(true);
    EXPECT_EQ(hs.frag_map_size(), 1u) << "period " << period;
  }
  EXPECT_EQ(hs.counters().frag_entries_expired, 0u);
  EXPECT_EQ(hs.counters().unattributed_packets, 0u);
}

TEST(FragHardening, UnknownIpidIsCountedUnattributed) {
  HostStack hs;
  const FiveTuple t = flow_tuple();
  attach_flow(hs, t);
  // Middle fragment whose first fragment was never seen.
  hs.tc_egress(fragment_frame(t, 0x4444, true, 8), 0);
  EXPECT_EQ(hs.counters().unattributed_packets, 1u);
}

// --- satellite 3: overlay boundary round-trips --------------------------

TEST(OverlayHardening, MaskDerivesFromShift) {
  EXPECT_EQ(kOverlayIndexMask, (std::uint32_t{1} << kOverlaySiteShift) - 1);
}

TEST(OverlayHardening, BoundaryRoundTripsThroughTelemetry) {
  // The original bug: finish_period masked the endpoint index with a
  // hardcoded 0xFFFFF; boundary indexes exercise every bit of the mask.
  const std::uint32_t sites[] = {0u, 1u, 4095u};
  const std::uint32_t indexes[] = {0u, 1u, kOverlayIndexMask - 1,
                                   kOverlayIndexMask};
  for (std::uint32_t site : sites) {
    for (std::uint32_t index : indexes) {
      const std::uint32_t ip = make_overlay_ip(site, index);
      EXPECT_EQ(overlay_ip_site(ip), site);
      EXPECT_EQ(overlay_ip_index(ip), index);

      ctrl::TelemetryCollector collector;
      dataplane::InstancePairReport r;
      r.src_instance = tm::make_endpoint(2, 7);
      r.dst_ip = ip;
      r.bytes = 1000000000ull;  // comfortably above any noise floor
      r.packets = 1;
      collector.ingest({r});
      tm::TrafficMatrix m = collector.finish_period();
      std::size_t flows = 0;
      for (const auto& [pair, demands] : m.pairs()) {
        for (const auto& d : demands) {
          ++flows;
          EXPECT_EQ(tm::endpoint_site(d.dst), site)
              << "site=" << site << " index=" << index;
          EXPECT_EQ(tm::endpoint_index(d.dst), index)
              << "site=" << site << " index=" << index;
        }
      }
      EXPECT_EQ(flows, 1u);
    }
  }
}

// --- satellite 4: malformed-frame fuzz sweep ----------------------------

/// Sum of all per-reason ingress drop counters; must equal
/// ingress_malformed after any sweep (each drop lands in exactly one).
std::uint64_t ingress_reason_total(const DataplaneCounters& c) {
  return c.ingress_bad_ethernet + c.ingress_bad_ipv4 + c.ingress_bad_udp +
         c.ingress_bad_vxlan + c.ingress_bad_sr + c.ingress_bad_inner;
}

Buffer encapsulated_frame(HostStack& hs) {
  const FiveTuple t = flow_tuple();
  attach_flow(hs, t);
  auto v = hs.tc_egress(inner_frame(t), 0x0A0000FE);
  EXPECT_EQ(v.action, TcVerdict::Action::kEncapsulated);
  return v.packet;
}

TEST(FuzzHardening, IngressTruncationAtEveryLength) {
  HostStack sender;
  const Buffer full = encapsulated_frame(sender);

  HostStack receiver;
  std::uint64_t processed = 0;
  for (std::size_t len = 0; len < full.size(); ++len) {
    Buffer cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    auto r = receiver.vtep_ingress(cut);
    ++processed;
    // A truncated VXLAN+SR frame must never decapsulate whole.
    EXPECT_NE(r.action, HostStack::IngressResult::Action::kDecapsulated)
        << "len=" << len;
    if (r.action == HostStack::IngressResult::Action::kDropMalformed) {
      EXPECT_NE(r.drop_reason, DropReason::kNone) << "len=" << len;
    }
  }
  const DataplaneCounters& c = receiver.counters();
  EXPECT_EQ(c.ingress_malformed, ingress_reason_total(c));
  EXPECT_EQ(c.ingress_malformed + c.ingress_not_vxlan, processed);
  EXPECT_EQ(c.ingress_decapsulated, 0u);

  // The untruncated frame still decapsulates.
  auto ok = receiver.vtep_ingress(full);
  EXPECT_EQ(ok.action, HostStack::IngressResult::Action::kDecapsulated);
  EXPECT_TRUE(ok.had_sr_header);
}

TEST(FuzzHardening, IngressSingleByteCorruption) {
  HostStack sender;
  const Buffer full = encapsulated_frame(sender);

  HostStack receiver;
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    for (std::uint8_t delta : {0x01, 0x80, 0xFF}) {
      Buffer mut = full;
      mut[pos] = static_cast<std::uint8_t>(mut[pos] ^ delta);
      auto r = receiver.vtep_ingress(mut);  // must not crash (ASan/UBSan)
      if (r.action == HostStack::IngressResult::Action::kDropMalformed) {
        EXPECT_NE(r.drop_reason, DropReason::kNone)
            << "pos=" << pos << " delta=" << int(delta);
      }
    }
  }
  const DataplaneCounters& c = receiver.counters();
  EXPECT_EQ(c.ingress_malformed, ingress_reason_total(c));
  // Sanity: plenty of corruptions actually hit a parser.
  EXPECT_GT(c.ingress_malformed, 0u);
}

TEST(FuzzHardening, IngressCorruptSrHopCount) {
  HostStack sender;
  Buffer full = encapsulated_frame(sender);
  // The SR header starts right after outer Eth/IPv4/UDP/VXLAN; byte 0 is
  // the hop count. Blow it past kSrMaxHops and past the buffer.
  const std::size_t sr_off = kEthernetHeaderSize + kIpv4HeaderSize +
                             kUdpHeaderSize + kVxlanHeaderSize;
  HostStack receiver;
  for (std::uint8_t hopnum : {0x00, 0x21, 0x7F, 0xFF}) {
    Buffer mut = full;
    mut[sr_off] = hopnum;
    auto r = receiver.vtep_ingress(mut);
    EXPECT_EQ(r.action, HostStack::IngressResult::Action::kDropMalformed);
    EXPECT_EQ(r.drop_reason, DropReason::kBadSrHeader);
  }
  EXPECT_EQ(receiver.counters().ingress_bad_sr, 4u);
}

TEST(FuzzHardening, EgressTruncationAtEveryLength) {
  HostStack hs;
  const FiveTuple t = flow_tuple();
  attach_flow(hs, t);
  const Buffer full = inner_frame(t);

  for (std::size_t len = 0; len < full.size(); ++len) {
    Buffer cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    auto v = hs.tc_egress(cut, 0x0A0000FE);  // must not crash
    if (v.action == TcVerdict::Action::kDropMalformed) {
      EXPECT_NE(v.drop_reason, DropReason::kNone) << "len=" << len;
    }
  }
  const DataplaneCounters& c = hs.counters();
  EXPECT_EQ(c.egress_malformed, c.egress_bad_ethernet + c.egress_bad_ipv4);
  EXPECT_GT(c.egress_malformed, 0u);

  // The full frame still encapsulates after the abuse.
  auto v = hs.tc_egress(full, 0x0A0000FE);
  EXPECT_EQ(v.action, TcVerdict::Action::kEncapsulated);
}

TEST(FuzzHardening, RandomGarbageFrames) {
  util::Rng rng(7);
  HostStack hs;
  for (int i = 0; i < 500; ++i) {
    Buffer junk(static_cast<std::size_t>(rng.uniform_int(0, 200)));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    auto in = hs.vtep_ingress(junk);
    auto out = hs.tc_egress(junk, 0);
    (void)in;
    (void)out;
  }
  const DataplaneCounters& c = hs.counters();
  EXPECT_EQ(c.ingress_malformed, ingress_reason_total(c));
  EXPECT_EQ(c.egress_malformed, c.egress_bad_ethernet + c.egress_bad_ipv4);
}

TEST(FuzzHardening, CountersVisibleThroughRegistry) {
  obs::MetricsRegistry reg;
  HostStack hs;
  hs.bind_metrics(reg);
  hs.vtep_ingress(Buffer{});  // one bad-ethernet drop
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("dataplane.ingress_malformed"), 1u);
  EXPECT_EQ(snap.counters.at("dataplane.ingress_bad_ethernet"), 1u);
  EXPECT_EQ(snap.gauges.at("dataplane.map.frag.entries"), 0.0);
}

}  // namespace
