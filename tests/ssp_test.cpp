// Tests for megate::ssp — exact DP against brute force, the sorted greedy,
// and FastSSP's four-step pipeline with its Appendix A.2 error bound.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "megate/ssp/fast_ssp.h"
#include "megate/ssp/subset_sum.h"
#include "megate/util/rng.h"

namespace megate::ssp {
namespace {

double best_by_brute_force(const std::vector<double>& values,
                           double capacity) {
  const std::size_t n = values.size();
  double best = 0.0;
  for (std::size_t mask = 0; mask < (1ull << n); ++mask) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) sum += values[i];
    }
    if (sum <= capacity) best = std::max(best, sum);
  }
  return best;
}

double selection_sum(const std::vector<double>& values, const Selection& s) {
  double sum = 0.0;
  for (std::size_t i : s.indices) sum += values[i];
  return sum;
}

// --- exact DP ---------------------------------------------------------------

TEST(SolveDp, MatchesBruteForceOnIntegers) {
  const std::vector<double> v{3, 34, 4, 12, 5, 2};
  Selection s = solve_dp(v, 9, 1.0);
  EXPECT_DOUBLE_EQ(s.total, 9.0);  // 4 + 5
  EXPECT_DOUBLE_EQ(selection_sum(v, s), s.total);
}

TEST(SolveDp, EmptyAndZeroCapacity) {
  EXPECT_TRUE(solve_dp({}, 10, 1.0).indices.empty());
  const std::vector<double> v{1, 2, 3};
  EXPECT_TRUE(solve_dp(v, 0, 1.0).indices.empty());
}

TEST(SolveDp, ItemLargerThanCapacityIgnored) {
  const std::vector<double> v{100.0, 3.0};
  Selection s = solve_dp(v, 10, 1.0);
  EXPECT_DOUBLE_EQ(s.total, 3.0);
}

TEST(SolveDp, SelectionNeverExceedsCapacity) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v;
    for (int i = 0; i < 30; ++i) v.push_back(rng.uniform(0.1, 20.0));
    const double cap = rng.uniform(10.0, 100.0);
    Selection s = solve_dp(v, cap, 0.01);
    EXPECT_LE(s.total, cap + 1e-9);
    EXPECT_NEAR(selection_sum(v, s), s.total, 1e-9);
  }
}

TEST(SolveDp, RejectsBadArguments) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(solve_dp(v, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(solve_dp(v, 1.0, 0.0), std::invalid_argument);
  const std::vector<double> neg{-1.0};
  EXPECT_THROW(solve_dp(neg, 1.0, 1.0), std::invalid_argument);
}

TEST(SolveDp, GuardsAgainstHugeTables) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(solve_dp(v, 1e18, 1e-9), std::invalid_argument);
}

struct DpCase {
  std::uint64_t seed;
  int items;
  double capacity;
};

class DpVsBruteForce : public ::testing::TestWithParam<DpCase> {};

TEST_P(DpVsBruteForce, FindsOptimumOnFineResolution) {
  const DpCase c = GetParam();
  util::Rng rng(c.seed);
  std::vector<double> v;
  for (int i = 0; i < c.items; ++i) {
    // Integer-valued items so the DP quantization is exact.
    v.push_back(static_cast<double>(rng.uniform_int(1, 15)));
  }
  Selection s = solve_dp(v, c.capacity, 1.0);
  EXPECT_DOUBLE_EQ(s.total, best_by_brute_force(v, c.capacity));
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, DpVsBruteForce,
    ::testing::Values(DpCase{1, 8, 20}, DpCase{2, 10, 35}, DpCase{3, 12, 18},
                      DpCase{4, 14, 50}, DpCase{5, 9, 11}, DpCase{6, 16, 64},
                      DpCase{7, 10, 9}, DpCase{8, 13, 41}));

// --- greedy -----------------------------------------------------------------

TEST(Greedy, TakesLargestFirst) {
  const std::vector<double> v{5, 9, 3};
  Selection s = solve_greedy(v, 12);
  EXPECT_DOUBLE_EQ(s.total, 12.0);  // 9 + 3
}

TEST(Greedy, NeverExceedsCapacity) {
  util::Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> v;
    for (int i = 0; i < 50; ++i) v.push_back(rng.lognormal(0, 1));
    const double cap = rng.uniform(1.0, 30.0);
    Selection s = solve_greedy(v, cap);
    EXPECT_LE(s.total, cap + 1e-9);
  }
}

TEST(Greedy, EmptyInputs) {
  EXPECT_TRUE(solve_greedy({}, 5).indices.empty());
  const std::vector<double> v{1};
  EXPECT_TRUE(solve_greedy(v, 0).indices.empty());
}

TEST(Greedy, IndicesAreSortedAndValid) {
  const std::vector<double> v{2, 8, 1, 4};
  Selection s = solve_greedy(v, 100);
  EXPECT_TRUE(std::is_sorted(s.indices.begin(), s.indices.end()));
  EXPECT_EQ(s.indices.size(), 4u);
}

// --- FastSSP ---------------------------------------------------------------

TEST(FastSsp, FeasibleAndFillsSimpleCase) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  FastSspStats stats;
  Selection s = fast_ssp(v, 10, {}, &stats);
  EXPECT_LE(s.total, 10.0 + 1e-9);
  EXPECT_GE(s.total, 9.0);  // near-perfect fill is achievable (e.g. 1+4+5)
  EXPECT_NEAR(selection_sum(v, s), s.total, 1e-9);
}

TEST(FastSsp, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(fast_ssp({}, 10).indices.empty());
  const std::vector<double> v{1, 2};
  EXPECT_TRUE(fast_ssp(v, 0).indices.empty());
  const std::vector<double> huge{100.0};
  EXPECT_TRUE(fast_ssp(huge, 10).indices.empty());
}

TEST(FastSsp, RejectsBadEpsilon) {
  const std::vector<double> v{1.0};
  FastSspOptions o;
  o.epsilon_prime = 0.0;
  EXPECT_THROW(fast_ssp(v, 5, o), std::invalid_argument);
  o.epsilon_prime = 1.0;
  EXPECT_THROW(fast_ssp(v, 5, o), std::invalid_argument);
}

TEST(FastSsp, RejectsNegativeValues) {
  const std::vector<double> v{-1.0};
  EXPECT_THROW(fast_ssp(v, 5), std::invalid_argument);
}

TEST(FastSsp, StatsReportPaperParameters) {
  util::Rng rng(7);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.lognormal(-2, 1));
  const double cap = 30.0;
  FastSspOptions o;
  o.epsilon_prime = 0.1;
  FastSspStats stats;
  fast_ssp(v, cap, o, &stats);
  EXPECT_NEAR(stats.threshold, 0.1 * cap / 3.0, 1e-12);         // M
  EXPECT_NEAR(stats.resolution, 0.1 * stats.threshold / 3.0, 1e-12);  // delta
  EXPECT_GT(stats.num_clusters, 0u);
}

TEST(FastSsp, ErrorBoundIsMinResidualOverCapacity) {
  util::Rng rng(8);
  std::vector<double> v;
  for (int i = 0; i < 300; ++i) v.push_back(rng.lognormal(-1, 1));
  const double total = std::accumulate(v.begin(), v.end(), 0.0);
  const double cap = total * 0.6;  // force some flows to be left out
  FastSspStats stats;
  Selection s = fast_ssp(v, cap, {}, &stats);
  ASSERT_LT(s.indices.size(), v.size());
  // bound = min unselected value / capacity, and the achieved gap must
  // respect it: cap - total_selected <= min unselected (else greedy would
  // have added that flow).
  std::vector<char> taken(v.size(), 0);
  for (std::size_t i : s.indices) taken[i] = 1;
  double min_left = 1e300;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!taken[i] && v[i] <= cap) min_left = std::min(min_left, v[i]);
  }
  EXPECT_NEAR(stats.error_bound, min_left / cap, 1e-9);
  EXPECT_LE(cap - s.total, min_left + 1e-9);
}

TEST(FastSsp, LargeItemsBecomeSingletonClusters) {
  // All items above M = eps*F/3: clustering must not merge them.
  const double cap = 100.0;
  FastSspOptions o;
  o.epsilon_prime = 0.3;  // M = 10
  std::vector<double> v{20, 30, 40, 15};
  FastSspStats stats;
  fast_ssp(v, cap, o, &stats);
  EXPECT_EQ(stats.num_clusters, 4u);
}

struct FastSspCase {
  std::uint64_t seed;
  int items;
  double cap_fraction;  ///< capacity as a fraction of total demand
  double eps;
};

class FastSspQuality : public ::testing::TestWithParam<FastSspCase> {};

TEST_P(FastSspQuality, CloseToDpAndAboveGreedyFloor) {
  const FastSspCase c = GetParam();
  util::Rng rng(c.seed);
  std::vector<double> v;
  for (int i = 0; i < c.items; ++i) v.push_back(rng.lognormal(-2.0, 1.2));
  const double total = std::accumulate(v.begin(), v.end(), 0.0);
  const double cap = total * c.cap_fraction;

  FastSspOptions o;
  o.epsilon_prime = c.eps;
  Selection fast = fast_ssp(v, cap, o);
  Selection greedy = solve_greedy(v, cap);
  Selection dp = solve_dp(v, cap, cap / 20000.0);

  EXPECT_LE(fast.total, cap + 1e-9);
  // FastSSP approximates the optimum within eps-ish; the exact DP with a
  // fine grid is our optimum proxy.
  EXPECT_GE(fast.total, (1.0 - 2.0 * c.eps) * dp.total);
  // And it should never be much worse than the plain greedy heuristic.
  EXPECT_GE(fast.total, 0.95 * greedy.total);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FastSspQuality,
    ::testing::Values(FastSspCase{11, 200, 0.3, 0.1},
                      FastSspCase{12, 200, 0.7, 0.1},
                      FastSspCase{13, 500, 0.5, 0.05},
                      FastSspCase{14, 500, 0.9, 0.1},
                      FastSspCase{15, 1000, 0.2, 0.1},
                      FastSspCase{16, 1000, 0.6, 0.2},
                      FastSspCase{17, 50, 0.5, 0.1},
                      FastSspCase{18, 2000, 0.4, 0.1}));

TEST(FastSsp, CapacityAboveTotalTakesEverything) {
  util::Rng rng(9);
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(rng.lognormal(-2, 1));
  const double total = std::accumulate(v.begin(), v.end(), 0.0);
  Selection s = fast_ssp(v, total * 1.01);
  EXPECT_EQ(s.indices.size(), v.size());
  EXPECT_NEAR(s.total, total, 1e-9);
}

TEST(FastSsp, DeterministicForSameInput) {
  util::Rng rng(10);
  std::vector<double> v;
  for (int i = 0; i < 400; ++i) v.push_back(rng.lognormal(-2, 1));
  Selection a = fast_ssp(v, 20.0);
  Selection b = fast_ssp(v, 20.0);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_DOUBLE_EQ(a.total, b.total);
}

}  // namespace
}  // namespace megate::ssp
