// Tests for the fault-injection subsystem: FaultPlan schedules, the
// KvStore shard redo log, agent retry/fall-back behaviour, connection
// drops, the FaultInjector event machinery and the end-to-end chaos loop
// (determinism + the convergence invariants).

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "megate/ctrl/agent.h"
#include "megate/ctrl/connection_manager.h"
#include "megate/ctrl/controller.h"
#include "megate/ctrl/hybrid_sync.h"
#include "megate/ctrl/kvstore.h"
#include "megate/ctrl/transport.h"
#include "megate/fault/chaos.h"
#include "megate/fault/fault_plan.h"
#include "megate/fault/injector.h"
#include "megate/sim/period_sim.h"
#include "megate/topo/generators.h"
#include "test_helpers.h"

namespace megate {
namespace {

// --- FaultPlan --------------------------------------------------------------

fault::FaultPlanOptions small_plan_options(std::uint64_t seed) {
  fault::FaultPlanOptions o;
  o.seed = seed;
  o.horizon_s = 300.0;
  o.quiet_tail_s = 60.0;
  o.shard_crashes = 2;
  o.link_failures = 2;
  o.pull_drop_windows = 2;
  o.stale_windows = 2;
  o.connection_drops = 1;
  return o;
}

TEST(FaultPlanTest, SameSeedSamePlan) {
  const auto opt = small_plan_options(7);
  const auto a = fault::FaultPlan::generate(opt, 4, 16);
  const auto b = fault::FaultPlan::generate(opt, 4, 16);
  EXPECT_EQ(a.to_log(), b.to_log());
  EXPECT_EQ(a.events().size(), b.events().size());
  EXPECT_EQ(a.last_fault_end_s(), b.last_fault_end_s());
}

TEST(FaultPlanTest, DifferentSeedDifferentPlan) {
  const auto a = fault::FaultPlan::generate(small_plan_options(7), 4, 16);
  const auto b = fault::FaultPlan::generate(small_plan_options(8), 4, 16);
  EXPECT_NE(a.to_log(), b.to_log());
}

TEST(FaultPlanTest, EventsSortedAndInsideQuietTailWindow) {
  const auto opt = small_plan_options(3);
  const auto plan = fault::FaultPlan::generate(opt, 4, 16);
  ASSERT_FALSE(plan.empty());
  double prev = -1.0;
  for (const auto& e : plan.events()) {
    EXPECT_GE(e.start_s, prev);
    prev = e.start_s;
    EXPECT_GE(e.start_s, 0.0);
    EXPECT_LE(e.end_s(), opt.horizon_s - opt.quiet_tail_s + 1e-9);
    EXPECT_LE(e.end_s(), plan.last_fault_end_s() + 1e-9);
  }
}

TEST(FaultPlanTest, EmptyTargetSpacesAreSkipped) {
  auto opt = small_plan_options(5);
  const auto plan = fault::FaultPlan::generate(opt, 0, 0);
  for (const auto& e : plan.events()) {
    EXPECT_NE(e.kind, fault::FaultKind::kShardCrash);
    EXPECT_NE(e.kind, fault::FaultKind::kLinkFailure);
  }
}

// --- KvStore shard availability --------------------------------------------

TEST(KvStoreFaultTest, DownShardRefusesReadsAndBuffersWrites) {
  ctrl::KvStore kv(4);
  kv.put("alpha", "1");
  const std::size_t shard = kv.shard_index("alpha");
  ASSERT_TRUE(kv.shard_up(shard));

  kv.set_shard_up(shard, false);
  EXPECT_FALSE(kv.shard_up(shard));
  const ctrl::GetResult down = kv.try_get("alpha");
  EXPECT_EQ(down.status, ctrl::GetStatus::kUnavailable);
  EXPECT_TRUE(down.value.empty());
  EXPECT_GE(kv.unavailable_count(), 1u);

  // Writes while down are buffered; the redo log replays in order.
  kv.put("alpha", "2");
  kv.put("alpha", "3");
  kv.set_shard_up(shard, true);
  const ctrl::GetResult up = kv.try_get("alpha");
  ASSERT_EQ(up.status, ctrl::GetStatus::kOk);
  EXPECT_EQ(up.value, "3");
}

TEST(KvStoreFaultTest, PublishAdvancesVersionWhileShardDown) {
  ctrl::KvStore kv(2);
  kv.set_shard_up(0, false);
  kv.set_shard_up(1, false);
  const ctrl::Version before = kv.version();
  kv.publish({{"k1", "v1"}, {"k2", "v2"}});
  EXPECT_EQ(kv.version(), before + 1);  // readers learn an update exists
  kv.set_shard_up(0, true);
  kv.set_shard_up(1, true);
  const ctrl::GetResult r1 = kv.try_get("k1");
  EXPECT_EQ(r1.status, ctrl::GetStatus::kOk);
  EXPECT_EQ(r1.value, "v1");
  const ctrl::GetResult r2 = kv.try_get("k2");
  EXPECT_EQ(r2.status, ctrl::GetStatus::kOk);
  EXPECT_EQ(r2.value, "v2");
  // Replayed publish deltas carry their publish version onto the shard.
  EXPECT_GE(r1.version, before + 1);
}

TEST(KvStoreFaultTest, MissVsUnavailableAndEraseOnDownShard) {
  ctrl::KvStore kv(1);
  EXPECT_EQ(kv.try_get("absent").status, ctrl::GetStatus::kMiss);
  kv.put("key", "v");
  kv.set_shard_up(0, false);
  EXPECT_FALSE(kv.erase("key"));
  kv.set_shard_up(0, true);
  EXPECT_TRUE(kv.erase("key"));
}

TEST(KvStoreFaultTest, ShardIndexOutOfRangeThrows) {
  ctrl::KvStore kv(2);
  EXPECT_THROW(kv.set_shard_up(2, false), std::out_of_range);
}

// --- EndpointAgent retry / fall-back ---------------------------------------

/// Hook that drops every pull while `drop` is set.
struct DropSwitch final : ctrl::FaultHooks {
  bool drop = false;
  bool drop_pull(std::uint64_t) override { return drop; }
};

TEST(AgentFaultTest, KeepsLastGoodRoutesAndRetriesOnDrop) {
  ctrl::KvStore kv(2);
  ctrl::Controller controller(&kv);
  DropSwitch hooks;
  ctrl::ControlCounters counters;

  ctrl::AgentOptions opt;
  opt.poll_interval_s = 10.0;
  opt.max_pull_retries = 3;
  opt.retry_backoff_s = 0.5;
  opt.fault_hooks = &hooks;
  opt.counters = &counters;
  ctrl::EndpointAgent agent(17, &kv, nullptr, opt);

  // Healthy pull of v1.
  controller.publish_path(17, {1, 2, 3});
  for (double t = 0.0; t <= 20.0; t += 1.0) agent.tick(t);
  ASSERT_EQ(agent.applied_version(), kv.version());
  const auto v1_routes = agent.routes();
  ASSERT_FALSE(v1_routes.empty());

  // v2 published but every pull drops: last-good routes survive, the agent
  // burns its retry budget and falls back to the poll cadence.
  hooks.drop = true;
  controller.publish_path(17, {4, 5});
  for (double t = 20.0; t <= 60.0; t += 1.0) agent.tick(t);
  EXPECT_EQ(agent.routes(), v1_routes);
  EXPECT_LT(agent.applied_version(), kv.version());
  EXPECT_GT(counters.pull_drops, 0u);
  EXPECT_GT(counters.pull_retries, 0u);
  EXPECT_GT(counters.fallbacks_last_good, 0u);

  // Faults lift: the agent converges to v2 on the next poll.
  hooks.drop = false;
  for (double t = 60.0; t <= 80.0; t += 1.0) agent.tick(t);
  EXPECT_EQ(agent.applied_version(), kv.version());
  EXPECT_EQ(agent.failed_pulls(), 0u);
  ASSERT_FALSE(agent.routes().empty());
  EXPECT_EQ(agent.routes()[0].hops, (std::vector<std::uint32_t>{4, 5}));
}

TEST(AgentFaultTest, ShardOutageFallsBackThenConverges) {
  ctrl::KvStore kv(1);
  ctrl::Controller controller(&kv);
  ctrl::ControlCounters counters;
  ctrl::AgentOptions opt;
  opt.poll_interval_s = 5.0;
  opt.retry_backoff_s = 0.5;
  opt.counters = &counters;
  ctrl::EndpointAgent agent(3, &kv, nullptr, opt);

  controller.publish_path(3, {9});
  kv.set_shard_up(0, false);
  for (double t = 0.0; t <= 30.0; t += 1.0) agent.tick(t);
  EXPECT_NE(agent.applied_version(), kv.version());
  EXPECT_GT(counters.shard_unavailable, 0u);
  EXPECT_TRUE(agent.routes().empty());  // never had a good table

  kv.set_shard_up(0, true);
  for (double t = 30.0; t <= 45.0; t += 1.0) agent.tick(t);
  EXPECT_EQ(agent.applied_version(), kv.version());
  EXPECT_FALSE(agent.routes().empty());
}

/// Hook that serves version queries `depth` versions behind.
struct StaleHook final : ctrl::FaultHooks {
  ctrl::Version depth = 0;
  ctrl::Version observed_version(std::uint64_t,
                                 ctrl::Version actual) override {
    return actual >= depth ? actual - depth : 0;
  }
};

TEST(AgentFaultTest, StaleVersionWindowDelaysApply) {
  ctrl::KvStore kv(2);
  ctrl::Controller controller(&kv);
  StaleHook hooks;
  ctrl::AgentOptions opt;
  opt.poll_interval_s = 5.0;
  opt.fault_hooks = &hooks;
  ctrl::EndpointAgent agent(8, &kv, nullptr, opt);

  controller.publish_path(8, {1});
  hooks.depth = 1;  // agent sees v0 while the store is at v1
  for (double t = 0.0; t <= 20.0; t += 1.0) agent.tick(t);
  EXPECT_EQ(agent.applied_version(), 0u);
  hooks.depth = 0;
  for (double t = 20.0; t <= 30.0; t += 1.0) agent.tick(t);
  EXPECT_EQ(agent.applied_version(), kv.version());
}

// --- ConnectionManager drops ------------------------------------------------

TEST(ConnectionManagerFaultTest, DroppedConnectionsReconnectAfterDelay) {
  ctrl::ConnectionManagerOptions opt;
  opt.reconnect_delay_s = 1.0;
  ctrl::ConnectionManager cm(opt);
  cm.connect(100);

  cm.drop_connections(30);
  EXPECT_EQ(cm.connections(), 70u);
  EXPECT_EQ(cm.drops(), 30u);
  EXPECT_EQ(cm.pending_reconnects(), 30u);

  cm.run(0.5);  // not due yet
  EXPECT_EQ(cm.connections(), 70u);
  cm.run(1.0);  // crosses the reconnect deadline
  EXPECT_EQ(cm.connections(), 100u);
  EXPECT_EQ(cm.reconnects(), 30u);
  EXPECT_EQ(cm.pending_reconnects(), 0u);
  EXPECT_GT(cm.cpu_utilization(), 0.0);
}

TEST(ConnectionManagerFaultTest, DropClampsToLiveConnections) {
  ctrl::ConnectionManager cm;
  cm.connect(10);
  cm.drop_connections(50);
  EXPECT_EQ(cm.connections(), 0u);
  EXPECT_EQ(cm.drops(), 10u);
  cm.run(5.0);
  EXPECT_EQ(cm.connections(), 10u);
}

// --- FaultInjector ----------------------------------------------------------

TEST(FaultInjectorTest, DeterministicEventLogAndShardLifecycle) {
  auto opt = small_plan_options(11);
  opt.connection_drops = 0;
  const auto run_once = [&](std::vector<std::string>* log) {
    auto s = testing::make_scenario(8, 12, 2);
    ctrl::KvStore kv(4);
    ctrl::InProcessTransport db(&kv);
    const auto plan =
        fault::FaultPlan::generate(opt, 4, s->graph.num_links() / 2);
    fault::FaultInjector::Bindings bind;
    bind.store = &db;
    bind.graph = &s->graph;
    fault::FaultInjector injector(plan, bind);
    bool saw_shard_down = false;
    for (double t = 0.0; t <= opt.horizon_s; t += 1.0) {
      injector.advance_to(t);
      for (std::size_t i = 0; i < kv.num_shards(); ++i) {
        saw_shard_down = saw_shard_down || !kv.shard_up(i);
      }
    }
    // Everything recovered by the horizon.
    for (std::size_t i = 0; i < kv.num_shards(); ++i) {
      EXPECT_TRUE(kv.shard_up(i));
    }
    for (topo::EdgeId e = 0; e < s->graph.num_links(); ++e) {
      EXPECT_TRUE(s->graph.link(e).up);
    }
    EXPECT_FALSE(injector.faults_active());
    *log = injector.event_log();
    return saw_shard_down;
  };
  std::vector<std::string> log_a;
  std::vector<std::string> log_b;
  const bool shard_down_a = run_once(&log_a);
  run_once(&log_b);
  EXPECT_TRUE(shard_down_a);
  ASSERT_FALSE(log_a.empty());
  EXPECT_EQ(log_a, log_b);
}

TEST(FaultInjectorTest, LinkFailuresNeverPartitionTheGraph) {
  auto opt = small_plan_options(13);
  opt.link_failures = 4;
  auto s = testing::make_scenario(8, 10, 2);
  const auto plan =
      fault::FaultPlan::generate(opt, 0, s->graph.num_links() / 2);
  fault::FaultInjector::Bindings bind;
  bind.graph = &s->graph;
  fault::FaultInjector injector(plan, bind);
  for (double t = 0.0; t <= opt.horizon_s; t += 1.0) {
    injector.advance_to(t);
    EXPECT_TRUE(s->graph.is_connected()) << "partitioned at t=" << t;
  }
}

// --- chaos loop -------------------------------------------------------------

fault::ChaosOptions small_chaos_options() {
  fault::ChaosOptions opt;
  opt.sites = 8;
  opt.duplex_links = 12;
  opt.endpoints_per_site = 2;
  opt.intervals = 8;
  opt.interval_s = 15.0;
  opt.poll_interval_s = 4.0;
  opt.plan.seed = 21;
  opt.plan.horizon_s = 0.0;  // auto-size to intervals * interval_s
  opt.plan.quiet_tail_s = 45.0;
  opt.plan.shard_crashes = 2;
  opt.plan.link_failures = 1;
  opt.plan.pull_drop_windows = 1;
  opt.plan.stale_windows = 1;
  return opt;
}

TEST(ChaosTest, SameSeedBitIdenticalReport) {
  const auto opt = small_chaos_options();
  const auto a = fault::run_chaos(opt);
  const auto b = fault::run_chaos(opt);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.event_log, b.event_log);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.final_version, b.final_version);
}

TEST(ChaosTest, DifferentPlanSeedDifferentFingerprint) {
  auto opt = small_chaos_options();
  const auto a = fault::run_chaos(opt);
  opt.plan.seed = 22;
  const auto b = fault::run_chaos(opt);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(ChaosTest, FaultFreeRunIsHealthy) {
  auto opt = small_chaos_options();
  opt.intervals = 4;
  opt.plan.shard_crashes = 0;
  opt.plan.link_failures = 0;
  opt.plan.pull_drop_windows = 0;
  opt.plan.stale_windows = 0;
  const auto report = fault::run_chaos(opt);
  EXPECT_TRUE(report.event_log.empty());
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? "not converged"
                                   : report.violations.front());
  EXPECT_GT(report.final_version, 0u);
  for (const auto& s : report.intervals) {
    EXPECT_GT(s.satisfied_ratio, 0.5);
    // Fault-free and converged: installed routes carry what the solver
    // assigned (interval 0 ramps up from empty tables).
    if (s.interval > 0) {
      EXPECT_GT(s.routed_demand_ratio, s.satisfied_ratio - 0.02);
    }
    EXPECT_LE(s.installed_max_utilization, 1.0 + 1e-6);
  }
}

// The ISSUE acceptance criterion: a 50-interval chaos run with shard
// crashes and link failures ends with zero violations and every agent on
// the latest TE-db version within K intervals of the last fault.
TEST(ChaosTest, FiftyIntervalAcceptanceRun) {
  fault::ChaosOptions opt;
  opt.sites = 8;
  opt.duplex_links = 12;
  opt.endpoints_per_site = 2;
  opt.intervals = 50;
  opt.interval_s = 10.0;
  opt.poll_interval_s = 3.0;
  opt.convergence_intervals = 3;
  opt.plan.seed = 4;
  opt.plan.horizon_s = 0.0;
  opt.plan.quiet_tail_s = 60.0;
  opt.plan.shard_crashes = 3;
  opt.plan.link_failures = 3;
  opt.plan.pull_drop_windows = 2;
  opt.plan.stale_windows = 2;
  const auto report = fault::run_chaos(opt);

  ASSERT_FALSE(report.event_log.empty());
  for (const auto& v : report.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(report.all_converged);
  EXPECT_TRUE(report.converged_within_k);
  EXPECT_TRUE(report.ok());
  // The faults actually bit: the control plane observed them and reacted.
  EXPECT_GT(report.counters.shard_unavailable + report.counters.pull_drops +
                report.counters.stale_version_reads,
            0u);
  EXPECT_GT(report.counters.fallbacks_last_good, 0u);
  EXPECT_GT(report.counters.publishes, 50u);  // mid-interval re-solves too
}

// --- period_sim link faults -------------------------------------------------

TEST(PeriodSimFaultTest, ConstShimRejectsFaults) {
  auto s = testing::make_scenario(6, 9, 2);
  sim::PeriodSimOptions opt;
  opt.periods = 2;
  opt.link_faults.push_back({.period = 0, .count = 1});
  // The const-graph compat shim cannot mutate the graph, so fault
  // configurations must be rejected; the mutable entry point takes them.
  const topo::Graph& const_graph = s->graph;
  EXPECT_THROW(sim::run_period_simulation(const_graph, s->tunnels,
                                          s->traffic,
                                          sim::DemandKnowledge::kOracle, opt),
               std::invalid_argument);
}

TEST(PeriodSimFaultTest, FaultsDegradeThenGraphRestored) {
  auto s = testing::make_scenario(6, 9, 2);
  sim::PeriodSimOptions opt;
  opt.periods = 6;
  opt.seed = 5;

  const auto clean = sim::run_period_simulation(
      s->graph, s->tunnels, s->traffic, sim::DemandKnowledge::kOracle, opt);

  opt.link_faults.push_back(
      {.period = 2, .count = 2, .duration_periods = 2, .seed = 9});
  const auto faulty = sim::run_period_simulation(
      s->graph, s->tunnels, s->traffic, sim::DemandKnowledge::kOracle, opt);

  ASSERT_EQ(clean.size(), faulty.size());
  for (topo::EdgeId e = 0; e < s->graph.num_links(); ++e) {
    EXPECT_TRUE(s->graph.link(e).up);  // restored before returning
  }
  // Identical demand evolution outside the fault window.
  EXPECT_DOUBLE_EQ(clean[0].actual_total_gbps, faulty[0].actual_total_gbps);
  EXPECT_DOUBLE_EQ(clean[0].carried_gbps, faulty[0].carried_gbps);
  // Degraded periods never carry more than the healthy run.
  for (std::size_t p = 0; p < clean.size(); ++p) {
    EXPECT_LE(faulty[p].carried_gbps, clean[p].carried_gbps + 1e-9);
  }
}

// --- hybrid sync drop-rate model -------------------------------------------

TEST(HybridSyncFaultTest, DropRateStretchesPollingStaleness) {
  auto s = testing::make_scenario(6, 9, 2);
  ctrl::SyncCostModel model;
  ctrl::HybridSyncOptions opt;
  opt.heavy_traffic_share = 0.5;
  const auto clean = ctrl::plan_hybrid_sync(s->traffic, model, opt);
  opt.pull_drop_rate = 0.5;
  const auto lossy = ctrl::plan_hybrid_sync(s->traffic, model, opt);
  EXPECT_GT(lossy.mean_staleness_s, clean.mean_staleness_s);
  EXPECT_NEAR(lossy.worst_staleness_s, 2.0 * clean.worst_staleness_s, 1e-9);

  opt.pull_drop_rate = 1.0;
  EXPECT_THROW(ctrl::plan_hybrid_sync(s->traffic, model, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace megate
