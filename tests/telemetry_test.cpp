// Tests for the telemetry loop: host-stack per-pair reports aggregated by
// the collector into the next TE period's traffic matrix, and the full
// measure -> solve round trip.

#include <gtest/gtest.h>

#include "megate/ctrl/telemetry.h"
#include "megate/te/checker.h"
#include "megate/te/megate_solver.h"
#include "test_helpers.h"

namespace megate {
namespace {

using namespace dataplane;

Buffer frame_for(const FiveTuple& t, std::size_t payload) {
  Buffer b;
  EthernetHeader eth;
  eth.serialize(b);
  Ipv4Header ip;
  ip.protocol = t.proto;
  ip.src_ip = t.src_ip;
  ip.dst_ip = t.dst_ip;
  ip.total_length =
      static_cast<std::uint16_t>(kIpv4HeaderSize + kUdpHeaderSize + payload);
  ip.serialize(b);
  UdpHeader udp;
  udp.src_port = t.src_port;
  udp.dst_port = t.dst_port;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderSize + payload);
  udp.serialize(b);
  b.insert(b.end(), payload, 0x5A);
  return b;
}

/// Drives `packets` packets of one instance flow through a host stack.
void drive_flow(HostStack& host, Pid pid, tm::EndpointId src,
                tm::EndpointId dst, std::uint16_t sport, int packets,
                std::size_t payload) {
  host.on_sys_enter_execve(pid, src);
  FiveTuple t;
  t.src_ip = make_overlay_ip(tm::endpoint_site(src), tm::endpoint_index(src));
  t.dst_ip = make_overlay_ip(tm::endpoint_site(dst), tm::endpoint_index(dst));
  t.proto = kProtoUdp;
  t.src_port = sport;
  t.dst_port = 443;
  host.on_conntrack_event(t, pid);
  Buffer f = frame_for(t, payload);
  for (int i = 0; i < packets; ++i) host.tc_egress(f, 0x01010101);
}

TEST(Telemetry, PairReportKeyedBySourceAndDestination) {
  HostStack host;
  const tm::EndpointId a = tm::make_endpoint(1, 10);
  const tm::EndpointId b = tm::make_endpoint(2, 20);
  const tm::EndpointId c = tm::make_endpoint(3, 30);
  drive_flow(host, 1, a, b, 1000, 3, 100);
  drive_flow(host, 1, a, c, 2000, 2, 100);
  auto report = host.collect_pair_report();
  ASSERT_EQ(report.size(), 2u);  // same source, two destinations
  std::uint64_t total_packets = 0;
  for (const auto& r : report) {
    EXPECT_EQ(r.src_instance, a);
    total_packets += r.packets;
  }
  EXPECT_EQ(total_packets, 5u);
}

TEST(Telemetry, CollectorBuildsTrafficMatrix) {
  HostStack host1, host2;
  const tm::EndpointId a = tm::make_endpoint(1, 1);
  const tm::EndpointId b = tm::make_endpoint(2, 2);
  const tm::EndpointId c = tm::make_endpoint(3, 3);
  drive_flow(host1, 1, a, b, 1000, 10, 1000);
  drive_flow(host2, 2, c, b, 1000, 5, 1000);

  ctrl::TelemetryOptions opt;
  opt.period_s = 1.0;  // 1 s period: Gbps == bytes*8/1e9
  ctrl::TelemetryCollector collector(opt);
  collector.collect_from(host1);
  collector.collect_from(host2);
  EXPECT_EQ(collector.pairs_seen(), 2u);

  tm::TrafficMatrix matrix = collector.finish_period();
  EXPECT_EQ(matrix.num_flows(), 2u);
  EXPECT_EQ(matrix.num_site_pairs(), 2u);  // (1->2) and (3->2)
  // Collector resets after finish_period.
  EXPECT_EQ(collector.pairs_seen(), 0u);
  EXPECT_EQ(collector.total_bytes(), 0u);

  // The demand reflects the measured bytes: 10 packets of
  // (eth+ip+udp+1000) bytes each over 1 s.
  const topo::SitePair pair12{1, 2};
  auto it = matrix.pairs().find(pair12);
  ASSERT_NE(it, matrix.pairs().end());
  ASSERT_EQ(it->second.size(), 1u);
  const double expected_bytes =
      10.0 * (kEthernetHeaderSize + kIpv4HeaderSize + kUdpHeaderSize + 1000);
  EXPECT_NEAR(it->second[0].demand_gbps, expected_bytes * 8.0 / 1e9, 1e-12);
  EXPECT_EQ(it->second[0].src, a);
  EXPECT_EQ(it->second[0].dst, b);
}

TEST(Telemetry, MinDemandFilter) {
  HostStack host;
  drive_flow(host, 1, tm::make_endpoint(1, 1), tm::make_endpoint(2, 1),
             1000, 1, 64);
  ctrl::TelemetryOptions opt;
  opt.period_s = 300.0;
  opt.min_demand_gbps = 1.0;  // one tiny packet cannot reach 1 Gbps
  ctrl::TelemetryCollector collector(opt);
  collector.collect_from(host);
  EXPECT_EQ(collector.finish_period().num_flows(), 0u);
}

TEST(Telemetry, MeasuredMatrixDrivesTheSolver) {
  // Full loop: packets -> telemetry -> matrix -> MegaTE solve on the
  // *measured* demands over a real topology.
  auto s = megate::testing::make_scenario(6, 10, 4, 0.1);
  HostStack host;
  // Three measured flows between sites that exist in the scenario graph.
  drive_flow(host, 1, tm::make_endpoint(0, 1), tm::make_endpoint(1, 2),
             1000, 50, 1200);
  drive_flow(host, 2, tm::make_endpoint(2, 3), tm::make_endpoint(4, 0),
             2000, 80, 1200);
  drive_flow(host, 3, tm::make_endpoint(5, 0), tm::make_endpoint(3, 1),
             3000, 20, 1200);

  ctrl::TelemetryOptions opt;
  opt.period_s = 1e-4;  // scale tiny byte counts up to meaningful Gbps
  ctrl::TelemetryCollector collector(opt);
  collector.collect_from(host);
  tm::TrafficMatrix measured = collector.finish_period();
  ASSERT_EQ(measured.num_flows(), 3u);

  te::TeProblem problem;
  problem.graph = &s->graph;
  problem.tunnels = &s->tunnels;
  problem.traffic = &measured;
  te::MegaTeSolver solver;
  te::TeSolution sol = solver.solve(problem, {}).solution;
  te::CheckOptions copt;
  copt.require_flow_assignment = true;
  EXPECT_TRUE(te::check_solution(problem, sol, copt).ok);
  EXPECT_GT(sol.satisfied_ratio(), 0.99)
      << "three small measured flows easily fit";
}

TEST(Telemetry, IngestAccumulatesAcrossCalls) {
  ctrl::TelemetryCollector collector;
  dataplane::InstancePairReport r;
  r.src_instance = tm::make_endpoint(1, 1);
  r.dst_ip = make_overlay_ip(2, 2);
  r.bytes = 100;
  collector.ingest({r});
  collector.ingest({r});
  EXPECT_EQ(collector.total_bytes(), 200u);
  EXPECT_EQ(collector.pairs_seen(), 1u);
}

}  // namespace
}  // namespace megate
