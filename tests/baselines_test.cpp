// Tests for the baseline solvers (LP-all, NCFlow, TEAL) and the shared
// fractional-solution utilities (hash assignment, latency metrics).

#include <gtest/gtest.h>

#include "megate/te/baselines.h"
#include "megate/te/checker.h"
#include "megate/te/megate_solver.h"
#include "test_helpers.h"

namespace megate::te {
namespace {

using megate::testing::make_scenario;

// --- LP-all ------------------------------------------------------------

TEST(LpAll, FeasibleAndBoundsDemand) {
  auto s = make_scenario(6, 10, 15, 0.3);
  LpAllSolver solver;
  TeSolution sol = solver.solve(s->problem());
  EXPECT_TRUE(sol.solved);
  auto res = check_solution(s->problem(), sol);
  EXPECT_TRUE(res.ok) << (res.violations.empty() ? ""
                                                 : res.violations.front());
  EXPECT_LE(sol.satisfied_ratio(), 1.0 + 1e-9);
  EXPECT_GT(sol.satisfied_ratio(), 0.0);
}

TEST(LpAll, RefusesOversizedInstance) {
  auto s = make_scenario(6, 10, 40, 0.3);
  LpAllOptions opt;
  opt.max_flows = 10;  // force the paper's OOM wall
  LpAllSolver solver(opt);
  TeSolution sol = solver.solve(s->problem());
  EXPECT_FALSE(sol.solved);
  EXPECT_GT(sol.est_memory_bytes, 0u);
}

TEST(LpAll, MatchesSiteLevelOptimumOnAggregate) {
  // The endpoint-granular fractional LP has the same optimum as the site
  // LP because endpoint pairs of one site pair are interchangeable.
  auto s = make_scenario(6, 10, 12, 0.25);
  LpAllSolver lp_all;
  MegaTeSolver megate;
  TeSolution frac = lp_all.solve(s->problem());
  TeSolution integral = megate.solve(s->problem(), {}).solution;
  // MegaTE (indivisible flows) can never beat the fractional optimum.
  EXPECT_LE(integral.satisfied_gbps, frac.satisfied_gbps * 1.02 + 1e-6);
  // ...but should be close (the paper: 88.1% vs 88.2% on B4*).
  EXPECT_GE(integral.satisfied_gbps, 0.85 * frac.satisfied_gbps);
}

// --- NCFlow -----------------------------------------------------------

TEST(NcFlow, FeasibleAndBelowLpAll) {
  auto s = make_scenario(9, 16, 15, 0.4);
  NcFlowSolver ncflow;
  LpAllSolver lp_all;
  TeSolution nc = ncflow.solve(s->problem());
  TeSolution opt = lp_all.solve(s->problem());
  ASSERT_TRUE(nc.solved);
  auto res = check_solution(s->problem(), nc);
  EXPECT_TRUE(res.ok) << (res.violations.empty() ? ""
                                                 : res.violations.front());
  // Cluster contraction restricts paths: never above the true optimum.
  EXPECT_LE(nc.satisfied_gbps, opt.satisfied_gbps * (1.0 + 1e-6));
  EXPECT_GT(nc.satisfied_ratio(), 0.1);
}

TEST(NcFlow, RefusesOversizedInstance) {
  auto s = make_scenario(6, 10, 40, 0.3);
  NcFlowOptions opt;
  opt.max_flows = 10;
  NcFlowSolver solver(opt);
  EXPECT_FALSE(solver.solve(s->problem()).solved);
}

TEST(NcFlow, ClusterCountOverride) {
  auto s = make_scenario(9, 16, 10, 0.3);
  NcFlowOptions opt;
  opt.num_clusters = 2;
  NcFlowSolver solver(opt);
  TeSolution sol = solver.solve(s->problem());
  EXPECT_TRUE(sol.solved);
  EXPECT_TRUE(check_solution(s->problem(), sol).ok);
}

// --- TEAL -------------------------------------------------------------

TEST(Teal, FeasibleAfterProjection) {
  auto s = make_scenario(9, 16, 25, 0.8);  // heavy load forces projection
  TealSolver teal;
  TeSolution sol = teal.solve(s->problem());
  ASSERT_TRUE(sol.solved);
  auto res = check_solution(s->problem(), sol);
  EXPECT_TRUE(res.ok) << (res.violations.empty() ? ""
                                                 : res.violations.front());
}

TEST(Teal, LightLoadNeedsNoProjection) {
  auto s = make_scenario(6, 10, 10, 0.02);
  TealSolver teal;
  TeSolution sol = teal.solve(s->problem());
  EXPECT_GT(sol.satisfied_ratio(), 0.95);
}

TEST(Teal, BelowOptimum) {
  auto s = make_scenario(9, 16, 15, 0.5);
  TealSolver teal;
  LpAllSolver lp_all;
  TeSolution t = teal.solve(s->problem());
  TeSolution opt = lp_all.solve(s->problem());
  EXPECT_LE(t.satisfied_gbps, opt.satisfied_gbps * (1.0 + 1e-6));
}

TEST(Teal, RefusesOversizedInstance) {
  auto s = make_scenario(6, 10, 40, 0.3);
  TealOptions opt;
  opt.max_flows = 10;
  EXPECT_FALSE(TealSolver(opt).solve(s->problem()).solved);
}

TEST(Teal, MoreIterationsNeverOverload) {
  auto s = make_scenario(8, 14, 20, 1.2);
  for (std::size_t iters : {1u, 3u, 10u, 25u}) {
    TealOptions opt;
    opt.admm_iterations = iters;
    TeSolution sol = TealSolver(opt).solve(s->problem());
    auto res = check_solution(s->problem(), sol);
    EXPECT_TRUE(res.ok) << "iters=" << iters;
  }
}

// --- hash assignment + latency metrics -------------------------------------

TEST(HashAssign, AssignsFlowsProportionally) {
  auto s = make_scenario(6, 10, 25, 0.2);
  LpAllSolver lp_all;
  TeSolution sol = lp_all.solve(s->problem());
  assign_flows_by_hash(s->problem(), sol, 42);
  std::size_t assigned = 0, total = 0;
  for (const auto& [pair, alloc] : sol.pairs) {
    auto it = s->traffic.pairs().find(pair);
    if (it == s->traffic.pairs().end()) continue;
    total += it->second.size();
    for (std::int32_t t : alloc.flow_tunnel) assigned += t >= 0;
  }
  EXPECT_GT(total, 0u);
  EXPECT_GT(assigned, 0u);
  // Light load: nearly everything admitted by hashing.
  EXPECT_GT(static_cast<double>(assigned) / total, 0.6);
}

TEST(HashAssign, DeterministicInSeed) {
  auto s = make_scenario(6, 10, 15, 0.2);
  LpAllSolver lp_all;
  TeSolution a = lp_all.solve(s->problem());
  TeSolution b = a;
  assign_flows_by_hash(s->problem(), a, 7);
  assign_flows_by_hash(s->problem(), b, 7);
  for (const auto& [pair, alloc] : a.pairs) {
    EXPECT_EQ(alloc.flow_tunnel, b.pairs.at(pair).flow_tunnel);
  }
}

TEST(HashAssign, QosBlindMixing) {
  // The defining failure of conventional TE: class-1 flows land on long
  // tunnels whenever the aggregate split uses them.
  auto s = make_scenario(6, 10, 40, 0.9, 11);
  LpAllSolver lp_all;
  TeSolution sol = lp_all.solve(s->problem());
  assign_flows_by_hash(s->problem(), sol, 5);
  std::size_t q1_on_long = 0;
  for (const auto& [pair, alloc] : sol.pairs) {
    auto it = s->traffic.pairs().find(pair);
    if (it == s->traffic.pairs().end()) continue;
    for (std::size_t i = 0; i < alloc.flow_tunnel.size(); ++i) {
      if (it->second[i].qos == tm::QosClass::kClass1 &&
          alloc.flow_tunnel[i] > 0) {
        ++q1_on_long;
      }
    }
  }
  EXPECT_GT(q1_on_long, 0u) << "hashing should strand some class-1 flows";
}

TEST(LatencyMetrics, HopsAndMsConsistent) {
  auto s = make_scenario(6, 10, 15, 0.2);
  MegaTeSolver megate;
  TeSolution sol = megate.solve(s->problem(), {}).solution;
  const double ms = mean_latency_ms(s->problem(), sol, 0);
  const double hops = mean_latency_hops(s->problem(), sol, 0);
  EXPECT_GT(ms, 0.0);
  EXPECT_GE(hops, 1.0);
}

TEST(LatencyMetrics, Class1NotWorseThanClass3UnderMegaTe) {
  auto s = make_scenario(10, 18, 50, 1.0, 3);
  MegaTeSolver megate;
  TeSolution sol = megate.solve(s->problem(), {}).solution;
  const double l1 = mean_latency_hops(s->problem(), sol, 1);
  const double l3 = mean_latency_hops(s->problem(), sol, 3);
  if (l1 > 0.0 && l3 > 0.0) {
    EXPECT_LE(l1, l3 * 1.25 + 0.5);
  }
}

// Cross-solver ranking sweep (the Fig. 10 ordering property).
class SolverRanking : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverRanking, MegaTeBetweenBaselinesAndOptimum) {
  auto s = make_scenario(9, 16, 20, 0.5, GetParam());
  LpAllSolver lp_all;
  MegaTeSolver megate;
  NcFlowSolver ncflow;
  const double opt = lp_all.solve(s->problem()).satisfied_gbps;
  const double mega = megate.solve(s->problem(), {}).solution.satisfied_gbps;
  const double nc = ncflow.solve(s->problem()).satisfied_gbps;
  EXPECT_LE(mega, opt * 1.02 + 1e-6);
  EXPECT_LE(nc, opt * (1.0 + 1e-6));
  // MegaTE should not be materially below NCFlow (paper: it is above).
  EXPECT_GE(mega, nc * 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverRanking,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace megate::te
