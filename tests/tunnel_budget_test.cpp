// SR hop budget as a planning constraint (the plan/encap contract).
//
// Four suites:
//   - TunnelBudgetProperty: every tunnel a build produces under a budget
//     round-trips through dataplane::SrHeader::serialize, fuzzed across
//     seeds x budgets {3..8} x both selection backends. This is the
//     end-to-end claim behind max_sr_hops: planning never emits a route
//     the dataplane refuses to encapsulate.
//   - KspDeterminism: Yen's output is a total order — equal-latency
//     parallel paths tie-break on the link-id sequence, so rebuilds are
//     byte-stable.
//   - CentralityBackend: middlepoint selection is deterministic, its
//     tunnels are loopless/contiguous/within budget, and its pair
//     coverage under a budget matches the ksp backend's.
//   - TunnelStats: "no tunnels for this pair" is attributable —
//     unreachable vs budget-excluded — on the TunnelSet and through the
//     metrics registry.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "megate/dataplane/sr_header.h"
#include "megate/obs/metrics.h"
#include "megate/topo/generators.h"
#include "megate/topo/graph.h"
#include "megate/topo/tunnels.h"

namespace megate::topo {
namespace {

/// The controller's tunnel -> SR hop list translation (one u32 site id
/// per traversed link, ctrl/controller.cpp): what actually reaches
/// SrHeader::serialize for a planned route.
std::vector<std::uint32_t> hops_of(const Graph& g, const Tunnel& t) {
  std::vector<std::uint32_t> hops;
  hops.reserve(t.links.size());
  for (EdgeId e : t.links) hops.push_back(g.link(e).dst);
  return hops;
}

void expect_valid_tunnel(const Graph& g, NodeId src, NodeId dst,
                         const Tunnel& t, std::uint32_t budget) {
  ASSERT_FALSE(t.links.empty());
  if (budget > 0) {
    EXPECT_LE(t.links.size(), budget) << "tunnel exceeds max_sr_hops";
  }
  // Contiguous src -> dst walk with no repeated node.
  EXPECT_EQ(g.link(t.links.front()).src, src);
  EXPECT_EQ(g.link(t.links.back()).dst, dst);
  std::set<NodeId> nodes{g.link(t.links.front()).src};
  for (std::size_t i = 0; i < t.links.size(); ++i) {
    if (i > 0) {
      EXPECT_EQ(g.link(t.links[i]).src, g.link(t.links[i - 1]).dst);
    }
    EXPECT_TRUE(nodes.insert(g.link(t.links[i]).dst).second)
        << "loop in tunnel";
  }
}

// --- TunnelBudgetProperty ---------------------------------------------------

TEST(TunnelBudgetProperty, EveryBuiltTunnelSerializesUnderBudget) {
  for (const std::uint64_t seed : {7u, 19u, 101u}) {
    GeneratorOptions gopt;
    gopt.seed = seed;
    const Graph g = make_isp_like(24, 40, gopt);
    for (std::uint32_t budget = 3; budget <= 8; ++budget) {
      for (const auto selection :
           {TunnelSelection::kKsp, TunnelSelection::kCentrality}) {
        TunnelOptions opt;
        opt.max_sr_hops = budget;
        opt.selection = selection;
        const TunnelSet ts = build_tunnels(g, opt);
        ASSERT_GT(ts.total_tunnels(), 0u);
        for (const auto& [pair, tunnels] : ts.all()) {
          for (const Tunnel& t : tunnels) {
            expect_valid_tunnel(g, pair.src, pair.dst, t, budget);
            dataplane::SrHeader hdr;
            hdr.hops = hops_of(g, t);
            dataplane::Buffer wire;
            ASSERT_TRUE(hdr.serialize(wire))
                << "planned tunnel refused by the dataplane (seed=" << seed
                << " budget=" << budget << ")";
            const auto parsed = dataplane::SrHeader::parse(
                dataplane::ConstBytes(wire.data(), wire.size()));
            ASSERT_TRUE(parsed.has_value());
            EXPECT_EQ(parsed->hops, hdr.hops);
          }
        }
      }
    }
  }
}

TEST(TunnelBudgetProperty, UnlimitedBudgetMatchesLegacyBuild) {
  GeneratorOptions gopt;
  gopt.seed = 13;
  const Graph g = make_isp_like(16, 26, gopt);
  const TunnelSet legacy = build_tunnels(g);
  TunnelOptions opt;  // max_sr_hops = 0 (unlimited), kKsp
  const TunnelSet budgeted = build_tunnels(g, opt);
  ASSERT_EQ(legacy.num_pairs(), budgeted.num_pairs());
  for (const auto& [pair, tunnels] : legacy.all()) {
    const auto& other = budgeted.tunnels(pair.src, pair.dst);
    ASSERT_EQ(tunnels.size(), other.size());
    for (std::size_t i = 0; i < tunnels.size(); ++i) {
      EXPECT_EQ(tunnels[i].links, other[i].links);
    }
  }
}

TEST(TunnelBudgetProperty, RepairKeepsTheBudget) {
  GeneratorOptions gopt;
  gopt.seed = 29;
  Graph g = make_isp_like(20, 34, gopt);
  TunnelOptions opt;
  opt.max_sr_hops = 4;
  TunnelSet ts = build_tunnels(g, opt);
  // Fail the most-used link so repair has real work to do.
  std::vector<std::size_t> uses(g.num_links(), 0);
  for (const auto& [pair, tunnels] : ts.all()) {
    for (const Tunnel& t : tunnels) {
      for (EdgeId e : t.links) ++uses[e];
    }
  }
  const EdgeId hot = static_cast<EdgeId>(
      std::max_element(uses.begin(), uses.end()) - uses.begin());
  g.set_link_state(hot, false);
  repair_tunnels(g, ts, opt);
  for (const auto& [pair, tunnels] : ts.all()) {
    for (const Tunnel& t : tunnels) {
      EXPECT_TRUE(t.alive(g));
      EXPECT_LE(t.links.size(), 4u) << "repair broke the hop budget";
    }
  }
}

// --- KspDeterminism ---------------------------------------------------------

/// Two nodes joined by three parallel equal-latency duplex links, plus an
/// equal-latency two-hop detour: every path src->dst ties on latency, so
/// only the deterministic tie-break orders them.
Graph parallel_paths_graph() {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId m = g.add_node("m");
  g.add_duplex_link(a, b, 100, 2.0);
  g.add_duplex_link(a, b, 100, 2.0);
  g.add_duplex_link(a, b, 100, 2.0);
  g.add_duplex_link(a, m, 100, 1.0);
  g.add_duplex_link(m, b, 100, 1.0);
  return g;
}

TEST(KspDeterminism, EqualLatencyPathsOrderByHopsThenLinkIds) {
  const Graph g = parallel_paths_graph();
  const auto paths = k_shortest_paths(g, 0, 1, 8);
  ASSERT_EQ(paths.size(), 4u);
  for (const Path& p : paths) EXPECT_DOUBLE_EQ(p.latency_ms, 2.0);
  // Ties break on hop count first (the three directs before the detour),
  // then on the link-id sequence (ascending).
  EXPECT_EQ(paths[0].hops(), 1u);
  EXPECT_EQ(paths[1].hops(), 1u);
  EXPECT_EQ(paths[2].hops(), 1u);
  EXPECT_EQ(paths[3].hops(), 2u);
  EXPECT_LT(paths[0].links, paths[1].links);
  EXPECT_LT(paths[1].links, paths[2].links);
}

TEST(KspDeterminism, RepeatedBuildsAreByteStable) {
  GeneratorOptions gopt;
  gopt.seed = 17;
  const Graph g = make_isp_like(18, 30, gopt);
  for (const auto selection :
       {TunnelSelection::kKsp, TunnelSelection::kCentrality}) {
    TunnelOptions opt;
    opt.selection = selection;
    opt.max_sr_hops = 5;
    const TunnelSet first = build_tunnels(g, opt);
    const TunnelSet second = build_tunnels(g, opt);
    ASSERT_EQ(first.num_pairs(), second.num_pairs());
    for (const auto& [pair, tunnels] : first.all()) {
      const auto& other = second.tunnels(pair.src, pair.dst);
      ASSERT_EQ(tunnels.size(), other.size());
      for (std::size_t i = 0; i < tunnels.size(); ++i) {
        EXPECT_EQ(tunnels[i].links, other[i].links) << "nondeterministic";
      }
    }
  }
}

// --- CentralityBackend ------------------------------------------------------

TEST(CentralityBackend, MiddlepointSelectionIsDeterministicAndBounded) {
  GeneratorOptions gopt;
  gopt.seed = 23;
  const Graph g = make_isp_like(30, 52, gopt);
  const auto a = select_middlepoints(g, 5);
  const auto b = select_middlepoints(g, 5);
  EXPECT_EQ(a, b);
  EXPECT_LE(a.size(), 5u);
  EXPECT_FALSE(a.empty());
  std::set<NodeId> uniq(a.begin(), a.end());
  EXPECT_EQ(uniq.size(), a.size()) << "duplicate middlepoint";
  // Auto size (count = 0) is also deterministic and within the site count.
  const auto autosel = select_middlepoints(g, 0);
  EXPECT_EQ(autosel, select_middlepoints(g, 0));
  EXPECT_LE(autosel.size(), g.num_nodes());
}

TEST(CentralityBackend, PairCoverageMatchesKspUnderBudget) {
  for (const std::uint64_t seed : {11u, 37u}) {
    GeneratorOptions gopt;
    gopt.seed = seed;
    const Graph g = make_isp_like(26, 44, gopt);
    for (const std::uint32_t budget : {3u, 5u}) {
      TunnelOptions ksp;
      ksp.max_sr_hops = budget;
      TunnelOptions cen = ksp;
      cen.selection = TunnelSelection::kCentrality;
      const TunnelSet kt = build_tunnels(g, ksp);
      const TunnelSet ct = build_tunnels(g, cen);
      for (const auto& [pair, tunnels] : kt.all()) {
        if (tunnels.empty()) continue;
        EXPECT_FALSE(ct.tunnels(pair.src, pair.dst).empty())
            << "centrality missed pair (" << pair.src << "," << pair.dst
            << ") that ksp covers at budget " << budget
            << " (seed=" << seed << ")";
      }
      EXPECT_GT(ct.stats().middlepoints, 0u);
      EXPECT_EQ(kt.stats().middlepoints, 0u);
    }
  }
}

TEST(CentralityBackend, TunnelsAreSortedDistinctAndCapped) {
  GeneratorOptions gopt;
  gopt.seed = 41;
  const Graph g = make_isp_like(22, 38, gopt);
  TunnelOptions opt;
  opt.selection = TunnelSelection::kCentrality;
  opt.tunnels_per_pair = 3;
  const TunnelSet ts = build_tunnels(g, opt);
  for (const auto& [pair, tunnels] : ts.all()) {
    EXPECT_LE(tunnels.size(), 3u);
    std::set<std::vector<EdgeId>> seen;
    for (std::size_t i = 0; i < tunnels.size(); ++i) {
      expect_valid_tunnel(g, pair.src, pair.dst, tunnels[i], 0);
      EXPECT_TRUE(seen.insert(tunnels[i].links).second) << "duplicate";
      if (i > 0) EXPECT_GE(tunnels[i].weight, tunnels[i - 1].weight);
    }
    if (!tunnels.empty()) {
      EXPECT_DOUBLE_EQ(tunnels.front().weight, 1.0);
    }
  }
}

// --- TunnelStats ------------------------------------------------------------

TEST(TunnelStats, UnreachablePairsAreCountedNotSilent) {
  Graph g;  // two islands: a-b and c-d
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  const NodeId d = g.add_node("d");
  g.add_duplex_link(a, b, 10, 1.0);
  g.add_duplex_link(c, d, 10, 1.0);
  obs::MetricsRegistry reg;
  TunnelOptions opt;
  opt.metrics = &reg;
  const TunnelSet ts = build_tunnels(g, opt);
  EXPECT_EQ(ts.stats().pairs_built, 4u);        // a<->b, c<->d
  EXPECT_EQ(ts.stats().pairs_unreachable, 8u);  // every cross-island pair
  EXPECT_EQ(ts.stats().pairs_budget_excluded, 0u);
  EXPECT_EQ(reg.counter("topo.tunnels.pairs_unreachable").value(), 8u);
  EXPECT_EQ(reg.counter("topo.tunnels.pairs_built").value(), 4u);
}

TEST(TunnelStats, BudgetExclusionIsDistinctFromUnreachable) {
  Graph g;  // line a-b-c-d: (a,d) needs 3 links
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  const NodeId d = g.add_node("d");
  g.add_duplex_link(a, b, 10, 1.0);
  g.add_duplex_link(b, c, 10, 1.0);
  g.add_duplex_link(c, d, 10, 1.0);
  for (const auto selection :
       {TunnelSelection::kKsp, TunnelSelection::kCentrality}) {
    obs::MetricsRegistry reg;
    TunnelOptions opt;
    opt.max_sr_hops = 2;
    opt.selection = selection;
    opt.metrics = &reg;
    const TunnelSet ts = build_tunnels(g, opt);
    // (a,d) and (d,a) are reachable but cannot fit two links.
    EXPECT_EQ(ts.stats().pairs_budget_excluded, 2u);
    EXPECT_EQ(ts.stats().pairs_unreachable, 0u);
    EXPECT_TRUE(ts.tunnels(a, d).empty());
    EXPECT_FALSE(ts.tunnels(a, c).empty());
    EXPECT_EQ(reg.counter("topo.tunnels.pairs_budget_excluded").value(), 2u);
  }
}

TEST(TunnelStats, FilteredPathCounterTicksWhenBudgetBinds) {
  GeneratorOptions gopt;
  gopt.seed = 47;
  const Graph g = make_isp_like(24, 40, gopt);
  TunnelOptions opt;
  opt.max_sr_hops = 3;
  const TunnelSet tight = build_tunnels(g, opt);
  opt.max_sr_hops = 0;
  const TunnelSet loose = build_tunnels(g, opt);
  EXPECT_GT(tight.stats().paths_budget_filtered, 0u);
  EXPECT_EQ(loose.stats().paths_budget_filtered, 0u);
  EXPECT_LE(tight.total_tunnels(), loose.total_tunnels());
}

}  // namespace
}  // namespace megate::topo
