// Wire-protocol and socket-layer tests (PR 6 satellite): codec
// round-trips with truncation at every byte length, random-corruption
// fuzzing with drop-reason accounting, FrameDecoder poisoning, the epoll
// event loop, and an in-thread ShardServer driven through ShardChannel —
// including the reconnect/backoff state machine and the resync protocol.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "megate/ctrl/kvstore.h"
#include "megate/ctrl/transport.h"
#include "megate/net/channel.h"
#include "megate/net/event_loop.h"
#include "megate/net/frame.h"
#include "megate/net/shard_server.h"
#include "megate/net/socket.h"
#include "megate/net/tcp_transport.h"
#include "megate/net/wire.h"
#include "megate/util/rng.h"

namespace megate {
namespace {

using ctrl::GetStatus;
using net::CodecCounters;
using net::Frame;
using net::FrameDecoder;
using net::FrameHeader;
using net::FrameType;

// --- wire primitives --------------------------------------------------------

TEST(WireTest, RoundTripsEveryPrimitive) {
  std::string buf;
  net::WireWriter w(&buf);
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.str("hello");
  w.str("");  // empty strings are legal

  net::WireReader r(buf);
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
  std::uint64_t d = 0;
  std::string s, t;
  ASSERT_TRUE(r.u8(&a));
  ASSERT_TRUE(r.u16(&b));
  ASSERT_TRUE(r.u32(&c));
  ASSERT_TRUE(r.u64(&d));
  ASSERT_TRUE(r.str(&s));
  ASSERT_TRUE(r.str(&t));
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xBEEF);
  EXPECT_EQ(c, 0xDEADBEEFu);
  EXPECT_EQ(d, 0x0123456789ABCDEFull);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(t, "");
  EXPECT_TRUE(r.done());
  // Reading past the end fails without moving the cursor.
  EXPECT_FALSE(r.u8(&a));
  EXPECT_TRUE(r.done());
}

TEST(WireTest, IsLittleEndianOnTheWire) {
  std::string buf;
  net::WireWriter w(&buf);
  w.u32(0x01020304u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buf[1]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(buf[2]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
}

TEST(WireTest, StringLengthPastBufferEndIsRejected) {
  std::string buf;
  net::WireWriter w(&buf);
  w.u32(1000);  // claims 1000 bytes, buffer has none
  net::WireReader r(buf);
  std::string s;
  EXPECT_FALSE(r.str(&s));
  // Cursor unchanged: the length prefix is still readable.
  std::uint32_t n = 0;
  EXPECT_TRUE(r.u32(&n));
  EXPECT_EQ(n, 1000u);
}

// --- typed payload codecs ---------------------------------------------------

// Strict-codec property: the payload decodes whole, every strict prefix
// is rejected (truncation at EVERY length), and one trailing byte is
// rejected (no garbage can hide behind a valid message).
template <typename M>
void ExpectStrictCodec(const M& msg) {
  const std::string payload = msg.encode();
  M out;
  ASSERT_TRUE(M::decode(payload, &out));
  // Re-encode equality is field equality for these deterministic codecs.
  EXPECT_EQ(out.encode(), payload);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    M t;
    EXPECT_FALSE(M::decode(std::string_view(payload.data(), len), &t))
        << "prefix of length " << len << " decoded";
  }
  M t;
  EXPECT_FALSE(M::decode(payload + '\0', &t)) << "trailing byte accepted";
}

TEST(CodecTest, EveryMessageRoundTripsAndRejectsEveryTruncation) {
  net::HelloMsg hello;
  hello.role = net::HelloMsg::kRoleAgent;
  hello.last_known_version = 41;
  hello.peer_name = "agent-7";
  ExpectStrictCodec(hello);

  net::HelloAckMsg ack;
  ack.last_applied = 9;
  ack.recovering = true;
  ack.server_name = "shardd1";
  ExpectStrictCodec(ack);

  net::VersionRespMsg ver;
  ver.version = 123456789;
  ExpectStrictCodec(ver);

  net::MultiGetReqMsg mreq;
  mreq.keys = {"path/1", "path/22", ""};
  ExpectStrictCodec(mreq);

  net::MultiGetRespMsg mresp;
  mresp.version = 7;
  mresp.consistent = false;
  mresp.entries.push_back({static_cast<std::uint8_t>(GetStatus::kOk), 7,
                           "dst:1,2|dst:3"});
  mresp.entries.push_back(
      {static_cast<std::uint8_t>(GetStatus::kUnavailable), 0, ""});
  ExpectStrictCodec(mresp);

  net::PublishDeltaReqMsg pub;
  pub.version = 3;
  pub.snapshot = true;
  pub.delta.upserts = {{"path/1", "dst:1"}, {"path/2", ""}};
  pub.delta.erases = {"path/9"};
  ExpectStrictCodec(pub);

  net::PublishDeltaRespMsg presp;
  presp.status = net::PublishStatus::kNeedResync;
  presp.applied = 2;
  ExpectStrictCodec(presp);

  net::PutReqMsg put;
  put.key = "meta/x";
  put.value = "y";
  ExpectStrictCodec(put);

  net::PutRespMsg putresp;
  putresp.version = 5;
  ExpectStrictCodec(putresp);

  net::SetShardUpReqMsg up;
  up.up = true;
  ExpectStrictCodec(up);

  net::SetShardUpRespMsg upresp;
  upresp.up = false;
  ExpectStrictCodec(upresp);

  net::SubscribeRespMsg sub;
  sub.version = 17;
  ExpectStrictCodec(sub);

  net::VersionEventMsg ev;
  ev.version = 18;
  ExpectStrictCodec(ev);

  net::HeartbeatMsg hb;
  hb.nonce = 0xFEEDFACE;
  ExpectStrictCodec(hb);

  net::ErrorMsg err;
  err.message = "bad payload";
  ExpectStrictCodec(err);
}

TEST(CodecTest, RejectsOutOfRangeEnumsAndBools) {
  // SET_SHARD_UP with a bool byte of 2.
  {
    std::string p;
    net::WireWriter(&p).u8(2);
    net::SetShardUpReqMsg m;
    EXPECT_FALSE(net::SetShardUpReqMsg::decode(p, &m));
  }
  // Publish response with status byte 3 (outside PublishStatus).
  {
    std::string p;
    net::WireWriter w(&p);
    w.u8(3);
    w.u64(1);
    net::PublishDeltaRespMsg m;
    EXPECT_FALSE(net::PublishDeltaRespMsg::decode(p, &m));
  }
  // Multi-get entry with a GetStatus byte past kUnavailable.
  {
    net::MultiGetRespMsg good;
    good.version = 1;
    good.entries.push_back({static_cast<std::uint8_t>(GetStatus::kOk), 1, "v"});
    std::string p = good.encode();
    // The entry status byte sits right after version(8) + consistent(1) +
    // count(4).
    p[8 + 1 + 4] = 9;
    net::MultiGetRespMsg m;
    EXPECT_FALSE(net::MultiGetRespMsg::decode(p, &m));
  }
}

TEST(CodecTest, RejectsAllocationBaitCounts) {
  // A multi-get request claiming 2^31 keys in a 12-byte payload must be
  // rejected before any reserve() happens.
  std::string p;
  net::WireWriter w(&p);
  w.u32(0x80000000u);
  w.u64(0);  // filler bytes, far fewer than the count demands
  net::MultiGetReqMsg m;
  EXPECT_FALSE(net::MultiGetReqMsg::decode(p, &m));
}

// --- frame decoder ----------------------------------------------------------

std::string encoded_frame(FrameType type, std::uint32_t request_id,
                          std::string_view payload) {
  std::string out;
  net::encode_frame(FrameHeader{net::kProtoVersion, type, request_id}, payload,
                    &out);
  return out;
}

TEST(FrameDecoderTest, DecodesFramesAcrossArbitraryChunking) {
  const std::string a =
      encoded_frame(FrameType::kVersionReq, 1, "");
  const std::string b =
      encoded_frame(FrameType::kHeartbeat, 2, net::HeartbeatMsg{77}.encode());
  const std::string stream = a + b;

  // Byte-at-a-time feeding produces exactly the two frames.
  FrameDecoder d;
  std::vector<Frame> got;
  for (char ch : stream) {
    d.feed(&ch, 1);
    Frame f;
    while (d.next(&f)) got.push_back(f);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].header.type, FrameType::kVersionReq);
  EXPECT_EQ(got[0].header.request_id, 1u);
  EXPECT_EQ(got[1].header.type, FrameType::kHeartbeat);
  net::HeartbeatMsg hb;
  ASSERT_TRUE(net::HeartbeatMsg::decode(got[1].payload, &hb));
  EXPECT_EQ(hb.nonce, 77u);
  EXPECT_EQ(d.counters().frames, 2u);
  EXPECT_EQ(d.counters().bytes, stream.size());
  EXPECT_EQ(d.buffered(), 0u);
  EXPECT_FALSE(d.poisoned());

  // Both frames in one feed work the same.
  FrameDecoder d2;
  d2.feed(stream);
  Frame f;
  ASSERT_TRUE(d2.next(&f));
  ASSERT_TRUE(d2.next(&f));
  EXPECT_FALSE(d2.next(&f));
}

TEST(FrameDecoderTest, TruncationAtEveryLengthYieldsNoFrameAndResumes) {
  const std::string frame = encoded_frame(
      FrameType::kError, 9, net::ErrorMsg{"something went wrong"}.encode());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    FrameDecoder d;
    d.feed(frame.data(), len);
    Frame f;
    EXPECT_FALSE(d.next(&f)) << "prefix " << len << " produced a frame";
    EXPECT_FALSE(d.poisoned()) << "prefix " << len << " poisoned the stream";
    // Feeding the remainder completes the frame: truncation is just
    // "wait for more bytes", never data loss.
    d.feed(frame.data() + len, frame.size() - len);
    ASSERT_TRUE(d.next(&f)) << "resume after prefix " << len;
    EXPECT_EQ(f.header.type, FrameType::kError);
    EXPECT_EQ(f.payload, net::ErrorMsg{"something went wrong"}.encode());
  }
}

TEST(FrameDecoderTest, HeaderCorruptionPoisonsWithAttribution) {
  const std::string good =
      encoded_frame(FrameType::kVersionReq, 5, "");

  struct Case {
    const char* name;
    std::size_t offset;  // byte to corrupt (after the 4-byte length)
    char value;
    std::uint64_t CodecCounters::*reason;
  };
  const Case cases[] = {
      {"bad magic", 4, '\x00', &CodecCounters::bad_magic},
      {"bad version", 6, '\x7F', &CodecCounters::bad_version},
      {"bad type", 7, '\x63', &CodecCounters::bad_type},
  };
  for (const Case& c : cases) {
    std::string bad = good;
    bad[c.offset] = c.value;
    FrameDecoder d;
    d.feed(bad);
    Frame f;
    EXPECT_FALSE(d.next(&f)) << c.name;
    EXPECT_TRUE(d.poisoned()) << c.name;
    EXPECT_EQ(d.counters().*(c.reason), 1u) << c.name;
    // Poisoning is permanent: a subsequent valid frame is never parsed.
    d.feed(good);
    EXPECT_FALSE(d.next(&f)) << c.name;
  }

  // Oversized length.
  {
    std::string bad = good;
    const std::uint32_t huge = net::kMaxFrameLength + 1;
    bad[0] = static_cast<char>(huge & 0xFF);
    bad[1] = static_cast<char>((huge >> 8) & 0xFF);
    bad[2] = static_cast<char>((huge >> 16) & 0xFF);
    bad[3] = static_cast<char>((huge >> 24) & 0xFF);
    FrameDecoder d;
    d.feed(bad);
    Frame f;
    EXPECT_FALSE(d.next(&f));
    EXPECT_TRUE(d.poisoned());
    EXPECT_EQ(d.counters().oversized, 1u);
  }
  // Undersized length (shorter than the header tail).
  {
    std::string bad = good;
    bad[0] = 3;
    bad[1] = bad[2] = bad[3] = 0;
    FrameDecoder d;
    d.feed(bad);
    Frame f;
    EXPECT_FALSE(d.next(&f));
    EXPECT_TRUE(d.poisoned());
    EXPECT_EQ(d.counters().undersized, 1u);
  }
}

// Typed decode dispatch used by the fuzzer: returns false on bad payload.
bool typed_decode(const Frame& f) {
  switch (f.header.type) {
    case FrameType::kHello: {
      net::HelloMsg m;
      return net::HelloMsg::decode(f.payload, &m);
    }
    case FrameType::kHelloAck: {
      net::HelloAckMsg m;
      return net::HelloAckMsg::decode(f.payload, &m);
    }
    case FrameType::kVersionReq:
      return f.payload.empty();
    case FrameType::kVersionResp: {
      net::VersionRespMsg m;
      return net::VersionRespMsg::decode(f.payload, &m);
    }
    case FrameType::kMultiGetReq: {
      net::MultiGetReqMsg m;
      return net::MultiGetReqMsg::decode(f.payload, &m);
    }
    case FrameType::kMultiGetResp: {
      net::MultiGetRespMsg m;
      return net::MultiGetRespMsg::decode(f.payload, &m);
    }
    case FrameType::kPublishDeltaReq: {
      net::PublishDeltaReqMsg m;
      return net::PublishDeltaReqMsg::decode(f.payload, &m);
    }
    case FrameType::kPublishDeltaResp: {
      net::PublishDeltaRespMsg m;
      return net::PublishDeltaRespMsg::decode(f.payload, &m);
    }
    case FrameType::kPutReq: {
      net::PutReqMsg m;
      return net::PutReqMsg::decode(f.payload, &m);
    }
    case FrameType::kPutResp: {
      net::PutRespMsg m;
      return net::PutRespMsg::decode(f.payload, &m);
    }
    case FrameType::kSetShardUpReq: {
      net::SetShardUpReqMsg m;
      return net::SetShardUpReqMsg::decode(f.payload, &m);
    }
    case FrameType::kSetShardUpResp: {
      net::SetShardUpRespMsg m;
      return net::SetShardUpRespMsg::decode(f.payload, &m);
    }
    case FrameType::kSubscribeReq:
      return f.payload.empty();
    case FrameType::kSubscribeResp: {
      net::SubscribeRespMsg m;
      return net::SubscribeRespMsg::decode(f.payload, &m);
    }
    case FrameType::kVersionEvent: {
      net::VersionEventMsg m;
      return net::VersionEventMsg::decode(f.payload, &m);
    }
    case FrameType::kHeartbeat:
    case FrameType::kHeartbeatAck: {
      net::HeartbeatMsg m;
      return net::HeartbeatMsg::decode(f.payload, &m);
    }
    case FrameType::kError: {
      net::ErrorMsg m;
      return net::ErrorMsg::decode(f.payload, &m);
    }
  }
  return false;
}

// The fuzz corpus: one representative valid frame per message type.
std::vector<std::string> fuzz_corpus() {
  std::vector<std::string> corpus;
  net::HelloMsg hello;
  hello.peer_name = "fuzz";
  corpus.push_back(encoded_frame(FrameType::kHello, 1, hello.encode()));
  corpus.push_back(encoded_frame(FrameType::kVersionReq, 2, ""));
  corpus.push_back(
      encoded_frame(FrameType::kVersionResp, 3,
                    net::VersionRespMsg{42}.encode()));
  net::MultiGetReqMsg mget;
  mget.keys = {"path/1", "path/2", "path/3"};
  corpus.push_back(encoded_frame(FrameType::kMultiGetReq, 4, mget.encode()));
  net::MultiGetRespMsg mresp;
  mresp.version = 6;
  mresp.entries.push_back({static_cast<std::uint8_t>(GetStatus::kOk), 6,
                           "dst:1,2|dst:3,4"});
  corpus.push_back(encoded_frame(FrameType::kMultiGetResp, 5, mresp.encode()));
  net::PublishDeltaReqMsg pub;
  pub.version = 7;
  pub.delta.upserts = {{"path/1", "dst:1"}};
  pub.delta.erases = {"path/2"};
  corpus.push_back(
      encoded_frame(FrameType::kPublishDeltaReq, 6, pub.encode()));
  corpus.push_back(encoded_frame(FrameType::kHeartbeat, 7,
                                 net::HeartbeatMsg{99}.encode()));
  corpus.push_back(encoded_frame(FrameType::kError, 8,
                                 net::ErrorMsg{"oops"}.encode()));
  return corpus;
}

TEST(FuzzTest, RandomCorruptionNeverCrashesAndEveryDropIsAttributed) {
  const std::vector<std::string> corpus = fuzz_corpus();
  util::Rng rng(20240601);
  CodecCounters totals;
  std::uint64_t decoded = 0, payload_rejects = 0, pending = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::string bytes = corpus[rng.uniform_int(0, corpus.size() - 1)];
    const std::size_t flips = 1 + rng.uniform_int(0, 3);
    for (std::size_t i = 0; i < flips; ++i) {
      bytes[rng.uniform_int(0, bytes.size() - 1)] ^=
          static_cast<char>(1u << rng.uniform_int(0, 7));
    }
    FrameDecoder d;
    d.feed(bytes);
    Frame f;
    while (d.next(&f)) {
      ++decoded;
      if (!typed_decode(f)) {
        ++d.counters().bad_payload;
        ++payload_rejects;
      }
    }
    const CodecCounters& c = d.counters();
    // Accounting invariant: every fed buffer ends fully explained — a
    // decoded frame, a poison reason, or bytes still waiting for more
    // input (a corrupt length pointing past the buffer).
    const bool explained =
        c.frames > 0 || d.poisoned() || d.buffered() > 0;
    EXPECT_TRUE(explained) << "iteration " << iter << " vanished silently";
    if (!d.poisoned() && c.frames == 0) ++pending;
    totals.frames += c.frames;
    totals.oversized += c.oversized;
    totals.undersized += c.undersized;
    totals.bad_magic += c.bad_magic;
    totals.bad_version += c.bad_version;
    totals.bad_type += c.bad_type;
    totals.bad_payload += c.bad_payload;
  }
  // 4000 corruptions must have exercised every rejection class at least
  // once (the corpus offsets cover length, magic, version, type and
  // payload bytes) — otherwise the fuzzer is not reaching the decoder.
  EXPECT_GT(totals.bad_magic, 0u);
  EXPECT_GT(totals.bad_version, 0u);
  EXPECT_GT(totals.bad_type, 0u);
  EXPECT_GT(totals.bad_payload, 0u);
  EXPECT_GT(totals.oversized + totals.undersized + pending, 0u);
  EXPECT_GT(decoded, 0u);  // some flips only touch payload content bytes
  EXPECT_GT(payload_rejects, 0u);
}

TEST(FuzzTest, RandomGarbageStreamsNeverCrashTheDecoder) {
  util::Rng rng(77);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t n = rng.uniform_int(0, 200);
    std::string bytes(n, '\0');
    for (char& ch : bytes) {
      ch = static_cast<char>(rng.uniform_int(0, 255));
    }
    FrameDecoder d;
    // Feed in random-sized chunks to stress resumption paths.
    std::size_t off = 0;
    while (off < bytes.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.uniform_int(0, 16),
                                bytes.size() - off);
      d.feed(bytes.data() + off, chunk);
      off += chunk;
      Frame f;
      while (d.next(&f)) (void)typed_decode(f);
    }
  }
}

// --- event loop -------------------------------------------------------------

TEST(EventLoopTest, DispatchesReadableEventsAndWakes) {
  net::EventLoop loop;
  ASSERT_TRUE(loop.valid());

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  net::Fd rd(fds[0]), wr(fds[1]);

  std::uint32_t seen = 0;
  ASSERT_TRUE(loop.add(rd.get(), net::kReadable,
                       [&seen](int, std::uint32_t events) { seen = events; }));
  // Nothing to read yet: poll times out.
  EXPECT_EQ(loop.poll(0), 0);

  ASSERT_EQ(::write(wr.get(), "x", 1), 1);
  EXPECT_EQ(loop.poll(1000), 1);
  EXPECT_TRUE(seen & net::kReadable);

  char buf[1];
  ASSERT_EQ(::read(rd.get(), buf, 1), 1);
  loop.remove(rd.get());

  // wake() makes a long poll return promptly.
  loop.wake();
  EXPECT_GE(loop.poll(5000), 0);  // returns without waiting 5 s
}

// --- server + channel -------------------------------------------------------

// One ShardServer on a background thread. Stats/kv reads from the test
// thread only happen after shutdown() joins the server thread.
struct TestServer {
  ctrl::KvStore kv{1};
  net::ShardServer server;
  std::thread thread;
  std::atomic<bool> stop{false};

  explicit TestServer(net::ShardServerOptions o = {}) : server(&kv, o) {}
  ~TestServer() { shutdown(); }

  bool start() {
    if (!server.start()) return false;
    thread = std::thread([this] { server.run(stop); });
    return true;
  }
  void shutdown() {
    if (!thread.joinable()) return;
    stop = true;
    server.wake();
    thread.join();
  }
};

net::ChannelOptions channel_options(std::uint16_t port) {
  net::ChannelOptions o;
  o.port = port;
  o.request_timeout_ms = 5000;  // sanitizer runs are slow
  o.peer_name = "net-test";
  return o;
}

TEST(ServerChannelTest, HandshakeRequestResponseAndAdminSeam) {
  TestServer ts;
  ASSERT_TRUE(ts.start());
  net::ShardChannel ch(channel_options(ts.server.port()));

  ASSERT_TRUE(ch.ensure_connected());
  EXPECT_EQ(ch.state(), net::ShardChannel::State::kReady);
  EXPECT_FALSE(ch.last_hello_ack().recovering);
  EXPECT_EQ(ch.last_hello_ack().last_applied, 0u);

  // Version starts at 0.
  std::string resp;
  ASSERT_TRUE(ch.request(FrameType::kVersionReq, "", FrameType::kVersionResp,
                         &resp));
  net::VersionRespMsg ver;
  ASSERT_TRUE(net::VersionRespMsg::decode(resp, &ver));
  EXPECT_EQ(ver.version, 0u);

  // Publish v1, read it back through MULTI_GET.
  net::PublishDeltaReqMsg pub;
  pub.version = 1;
  pub.delta.upserts = {{"path/1", "dst:1,2"}};
  ASSERT_TRUE(ch.request(FrameType::kPublishDeltaReq, pub.encode(),
                         FrameType::kPublishDeltaResp, &resp));
  net::PublishDeltaRespMsg presp;
  ASSERT_TRUE(net::PublishDeltaRespMsg::decode(resp, &presp));
  EXPECT_EQ(presp.status, net::PublishStatus::kApplied);
  EXPECT_EQ(presp.applied, 1u);

  net::MultiGetReqMsg mreq;
  mreq.keys = {"path/1", "path/404"};
  ASSERT_TRUE(ch.request(FrameType::kMultiGetReq, mreq.encode(),
                         FrameType::kMultiGetResp, &resp));
  net::MultiGetRespMsg mresp;
  ASSERT_TRUE(net::MultiGetRespMsg::decode(resp, &mresp));
  EXPECT_EQ(mresp.version, 1u);
  ASSERT_EQ(mresp.entries.size(), 2u);
  EXPECT_EQ(mresp.entries[0].status,
            static_cast<std::uint8_t>(GetStatus::kOk));
  EXPECT_EQ(mresp.entries[0].value, "dst:1,2");
  EXPECT_EQ(mresp.entries[1].status,
            static_cast<std::uint8_t>(GetStatus::kMiss));

  // Admin seam: shard down -> reads answer kUnavailable; a publish while
  // down lands in the redo log; shard up replays it.
  net::SetShardUpReqMsg down;
  down.up = false;
  ASSERT_TRUE(ch.request(FrameType::kSetShardUpReq, down.encode(),
                         FrameType::kSetShardUpResp, &resp));
  ASSERT_TRUE(ch.request(FrameType::kMultiGetReq, mreq.encode(),
                         FrameType::kMultiGetResp, &resp));
  ASSERT_TRUE(net::MultiGetRespMsg::decode(resp, &mresp));
  EXPECT_EQ(mresp.entries[0].status,
            static_cast<std::uint8_t>(GetStatus::kUnavailable));

  pub.version = 2;
  pub.delta.upserts = {{"path/1", "dst:3"}};
  ASSERT_TRUE(ch.request(FrameType::kPublishDeltaReq, pub.encode(),
                         FrameType::kPublishDeltaResp, &resp));
  ASSERT_TRUE(net::PublishDeltaRespMsg::decode(resp, &presp));
  EXPECT_EQ(presp.status, net::PublishStatus::kApplied);

  net::SetShardUpReqMsg up;
  up.up = true;
  ASSERT_TRUE(ch.request(FrameType::kSetShardUpReq, up.encode(),
                         FrameType::kSetShardUpResp, &resp));
  ASSERT_TRUE(ch.request(FrameType::kMultiGetReq, mreq.encode(),
                         FrameType::kMultiGetResp, &resp));
  ASSERT_TRUE(net::MultiGetRespMsg::decode(resp, &mresp));
  EXPECT_EQ(mresp.entries[0].status,
            static_cast<std::uint8_t>(GetStatus::kOk));
  EXPECT_EQ(mresp.entries[0].value, "dst:3");

  // Heartbeat echoes its nonce.
  ASSERT_TRUE(ch.request(FrameType::kHeartbeat,
                         net::HeartbeatMsg{31337}.encode(),
                         FrameType::kHeartbeatAck, &resp));
  net::HeartbeatMsg hb;
  ASSERT_TRUE(net::HeartbeatMsg::decode(resp, &hb));
  EXPECT_EQ(hb.nonce, 31337u);

  ts.shutdown();
  EXPECT_EQ(ts.server.stats().publishes, 2u);
  EXPECT_EQ(ts.server.stats().connections, 1u);
  EXPECT_EQ(ts.kv.redo_replayed(), 1u);
}

TEST(ServerChannelTest, VersionGapTriggersResyncAndStaleIsIgnored) {
  TestServer ts;
  ASSERT_TRUE(ts.start());
  net::ShardChannel ch(channel_options(ts.server.port()));
  std::string resp;

  auto publish = [&](ctrl::Version v, bool snapshot) {
    net::PublishDeltaReqMsg pub;
    pub.version = v;
    pub.snapshot = snapshot;
    pub.delta.upserts = {{"path/1", "v" + std::to_string(v)}};
    EXPECT_TRUE(ch.request(FrameType::kPublishDeltaReq, pub.encode(),
                           FrameType::kPublishDeltaResp, &resp));
    net::PublishDeltaRespMsg presp;
    EXPECT_TRUE(net::PublishDeltaRespMsg::decode(resp, &presp));
    return presp;
  };

  EXPECT_EQ(publish(1, false).status, net::PublishStatus::kApplied);
  // Gap: v3 without v2 -> the server demands a resync and stays at 1.
  auto gap = publish(3, false);
  EXPECT_EQ(gap.status, net::PublishStatus::kNeedResync);
  EXPECT_EQ(gap.applied, 1u);
  // Duplicate/old version: ignored as stale.
  EXPECT_EQ(publish(1, false).status, net::PublishStatus::kStale);
  // Snapshot closes the gap (reset_to jumps the version).
  auto snap = publish(5, true);
  EXPECT_EQ(snap.status, net::PublishStatus::kApplied);
  EXPECT_EQ(snap.applied, 5u);
  // Contiguous publishing resumes after the jump.
  EXPECT_EQ(publish(6, false).status, net::PublishStatus::kApplied);

  ts.shutdown();
  EXPECT_EQ(ts.server.stats().resyncs_requested, 1u);
  EXPECT_EQ(ts.server.stats().stale_publishes, 1u);
  EXPECT_EQ(ts.server.stats().snapshots, 1u);
  EXPECT_EQ(ts.kv.version(), 6u);
  EXPECT_EQ(ts.kv.try_get("path/1").value, "v6");
}

TEST(ServerChannelTest, MalformedPayloadGetsErrorButKeepsConnection) {
  TestServer ts;
  ASSERT_TRUE(ts.start());
  net::ShardChannel ch(channel_options(ts.server.port()));
  std::string resp;

  // Garbage MULTI_GET payload: server answers ERROR; request() reports
  // failure but the connection stays usable.
  EXPECT_FALSE(ch.request(FrameType::kMultiGetReq, "\xFF\xFF\xFF",
                          FrameType::kMultiGetResp, &resp));
  EXPECT_EQ(ch.state(), net::ShardChannel::State::kReady);
  ASSERT_TRUE(ch.request(FrameType::kVersionReq, "", FrameType::kVersionResp,
                         &resp));

  ts.shutdown();
  EXPECT_EQ(ts.server.stats().errors_sent, 1u);
  EXPECT_EQ(ts.server.codec_counters().bad_payload, 1u);
}

TEST(ServerChannelTest, RecoveringServerRefusesReadsUntilFirstPublish) {
  net::ShardServerOptions opt;
  opt.recovering = true;
  TestServer ts(opt);
  ASSERT_TRUE(ts.start());
  net::ShardChannel ch(channel_options(ts.server.port()));
  std::string resp;

  ASSERT_TRUE(ch.ensure_connected());
  EXPECT_TRUE(ch.last_hello_ack().recovering);

  net::MultiGetReqMsg mreq;
  mreq.keys = {"path/1"};
  ASSERT_TRUE(ch.request(FrameType::kMultiGetReq, mreq.encode(),
                         FrameType::kMultiGetResp, &resp));
  net::MultiGetRespMsg mresp;
  ASSERT_TRUE(net::MultiGetRespMsg::decode(resp, &mresp));
  EXPECT_EQ(mresp.entries[0].status,
            static_cast<std::uint8_t>(GetStatus::kUnavailable));

  // The catch-up snapshot closes the stale-read window.
  net::PublishDeltaReqMsg pub;
  pub.version = 4;
  pub.snapshot = true;
  pub.delta.upserts = {{"path/1", "dst:9"}};
  ASSERT_TRUE(ch.request(FrameType::kPublishDeltaReq, pub.encode(),
                         FrameType::kPublishDeltaResp, &resp));
  ASSERT_TRUE(ch.request(FrameType::kMultiGetReq, mreq.encode(),
                         FrameType::kMultiGetResp, &resp));
  ASSERT_TRUE(net::MultiGetRespMsg::decode(resp, &mresp));
  EXPECT_EQ(mresp.entries[0].status,
            static_cast<std::uint8_t>(GetStatus::kOk));
  EXPECT_EQ(mresp.entries[0].value, "dst:9");

  ts.shutdown();
  EXPECT_FALSE(ts.server.recovering());
}

TEST(ServerChannelTest, SubscriberReceivesVersionEvents) {
  TestServer ts;
  ASSERT_TRUE(ts.start());
  net::ShardChannel sub(channel_options(ts.server.port()));
  net::ShardChannel pub(channel_options(ts.server.port()));
  std::string resp;

  ASSERT_TRUE(sub.request(FrameType::kSubscribeReq, "",
                          FrameType::kSubscribeResp, &resp));
  net::SubscribeRespMsg sresp;
  ASSERT_TRUE(net::SubscribeRespMsg::decode(resp, &sresp));
  EXPECT_EQ(sresp.version, 0u);

  net::PublishDeltaReqMsg p;
  p.version = 1;
  p.delta.upserts = {{"path/1", "dst:1"}};
  ASSERT_TRUE(pub.request(FrameType::kPublishDeltaReq, p.encode(),
                          FrameType::kPublishDeltaResp, &resp));

  // The push was written to the subscriber's socket before the next
  // response (single-threaded server, per-connection FIFO): any request
  // on `sub` surfaces it into the event queue.
  ASSERT_TRUE(sub.request(FrameType::kVersionReq, "", FrameType::kVersionResp,
                          &resp));
  const std::vector<ctrl::Version> events = sub.drain_version_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], 1u);
  EXPECT_TRUE(sub.drain_version_events().empty());
}

// --- reconnect / backoff state machine --------------------------------------

// A port with no listener: bind, record, close — nothing listens there
// afterwards (nothing else grabs it within the test's lifetime).
std::uint16_t dead_port() {
  std::uint16_t port = 0;
  net::Fd fd = net::tcp_listen(0, &port);
  EXPECT_TRUE(fd.valid());
  return port;
}

TEST(BackoffTest, FailureDoublesDelayUpToCapAndSuppressesDialing) {
  net::ChannelOptions o = channel_options(dead_port());
  o.connect_timeout_ms = 100;
  o.backoff_initial_ms = 50;
  o.backoff_cap_ms = 400;
  net::ShardChannel ch(o);

  // First dial fails -> kBackoff. The initial 50 ms delay was consumed
  // by this failure; backoff_delay_ms() reports the NEXT (doubled) one.
  EXPECT_FALSE(ch.ensure_connected());
  EXPECT_EQ(ch.state(), net::ShardChannel::State::kBackoff);
  EXPECT_EQ(ch.backoff_delay_ms(), 100);
  EXPECT_EQ(ch.stats().connect_failures, 1u);
  EXPECT_EQ(ch.stats().backoffs, 1u);

  // While the backoff deadline is pending, dialing is suppressed — the
  // connect_failures counter must not move.
  EXPECT_FALSE(ch.ensure_connected());
  EXPECT_EQ(ch.stats().connect_failures, 1u);

  // Repeated failures double the delay and saturate at the cap.
  ch.fail();
  EXPECT_EQ(ch.backoff_delay_ms(), 200);
  ch.fail();
  EXPECT_EQ(ch.backoff_delay_ms(), 400);
  ch.fail();
  EXPECT_EQ(ch.backoff_delay_ms(), 400);  // capped

  // Requests during backoff fail fast (no dial attempt, no timeout).
  std::string resp;
  EXPECT_FALSE(ch.request(FrameType::kVersionReq, "", FrameType::kVersionResp,
                          &resp));
}

TEST(BackoffTest, UnreachableFailsFastAndReenableResetsBackoff) {
  net::ChannelOptions o = channel_options(dead_port());
  o.connect_timeout_ms = 100;
  net::ShardChannel ch(o);

  EXPECT_FALSE(ch.ensure_connected());
  ch.fail();
  const int delay_before = ch.backoff_delay_ms();
  EXPECT_GT(delay_before, o.backoff_initial_ms);

  ch.set_reachable(false);
  EXPECT_EQ(ch.state(), net::ShardChannel::State::kUnreachable);
  // Fail-fast: no dialing, no timeout consumption.
  const std::uint64_t dials = ch.stats().connect_failures;
  std::string resp;
  EXPECT_FALSE(ch.request(FrameType::kVersionReq, "", FrameType::kVersionResp,
                          &resp));
  EXPECT_FALSE(ch.ensure_connected());
  EXPECT_EQ(ch.stats().connect_failures, dials);
  EXPECT_EQ(ch.stats().timeouts, 0u);

  // Re-enable: fresh backoff, dialing allowed again.
  ch.set_reachable(true);
  EXPECT_EQ(ch.state(), net::ShardChannel::State::kDisconnected);
  EXPECT_FALSE(ch.ensure_connected());  // still nothing listening
  EXPECT_EQ(ch.stats().connect_failures, dials + 1);
}

TEST(BackoffTest, ReconnectsAfterServerComesBack) {
  // Start a server, kill it, watch the channel fail, restart on the same
  // port, watch the channel recover once backoff elapses.
  auto ts = std::make_unique<TestServer>();
  ASSERT_TRUE(ts->start());
  const std::uint16_t port = ts->server.port();

  net::ChannelOptions o = channel_options(port);
  o.backoff_initial_ms = 10;
  net::ShardChannel ch(o);
  ASSERT_TRUE(ch.ensure_connected());

  ts.reset();  // server gone, port released
  std::string resp;
  EXPECT_FALSE(ch.request(FrameType::kVersionReq, "", FrameType::kVersionResp,
                          &resp));
  EXPECT_NE(ch.state(), net::ShardChannel::State::kReady);

  net::ShardServerOptions so;
  so.port = port;
  TestServer back(so);
  ASSERT_TRUE(back.start());
  // Retry until backoff elapses and the dial lands (bounded wait).
  bool reconnected = false;
  for (int i = 0; i < 200 && !reconnected; ++i) {
    reconnected = ch.request(FrameType::kVersionReq, "",
                             FrameType::kVersionResp, &resp);
    if (!reconnected) ::usleep(10000);
  }
  EXPECT_TRUE(reconnected);
  EXPECT_GE(ch.stats().connects, 2u);
}

// --- TcpKvTransport against in-thread servers -------------------------------

struct TwoShardRig {
  TestServer s0, s1;
  std::unique_ptr<net::TcpKvTransport> transport;

  bool start() {
    if (!s0.start() || !s1.start()) return false;
    net::TcpTransportOptions o;
    o.ports = {s0.server.port(), s1.server.port()};
    o.request_timeout_ms = 5000;
    transport = std::make_unique<net::TcpKvTransport>(o);
    return true;
  }
};

TEST(TcpTransportTest, MatchesInProcessKvStoreSemantics) {
  TwoShardRig rig;
  ASSERT_TRUE(rig.start());
  net::TcpKvTransport& tcp = *rig.transport;
  ctrl::KvStore local(2);
  ctrl::InProcessTransport inproc(&local);

  std::vector<std::string> keys;
  for (int i = 0; i < 16; ++i) keys.push_back("path/" + std::to_string(i));

  // Same key placement under both transports.
  for (const std::string& k : keys) {
    EXPECT_EQ(tcp.shard_index(k), inproc.shard_index(k)) << k;
  }

  // publish / publish_delta / put produce the same versions and reads.
  std::vector<std::pair<std::string, std::string>> batch;
  for (int i = 0; i < 16; ++i) batch.emplace_back(keys[i], "v" + std::to_string(i));
  EXPECT_EQ(tcp.publish(batch), inproc.publish(batch));
  ctrl::KvDelta delta;
  delta.upserts = {{"path/3", "updated"}};
  delta.erases = {"path/5"};
  EXPECT_EQ(tcp.publish_delta(delta), inproc.publish_delta(delta));
  tcp.put("meta/epoch", "7");
  inproc.put("meta/epoch", "7");

  EXPECT_EQ(tcp.version(), inproc.version());

  auto all_keys = keys;
  all_keys.push_back("meta/epoch");
  all_keys.push_back("path/404");
  const ctrl::MultiGetResult a = tcp.multi_get(all_keys);
  const ctrl::MultiGetResult b = inproc.multi_get(all_keys);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.consistent, b.consistent);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].status, b.entries[i].status) << all_keys[i];
    EXPECT_EQ(a.entries[i].value, b.entries[i].value) << all_keys[i];
    EXPECT_EQ(a.entries[i].version, b.entries[i].version) << all_keys[i];
  }

  // Single-key get parity, including the miss case.
  for (const std::string& k : {std::string("path/3"), std::string("path/5"),
                               std::string("path/404")}) {
    const ctrl::GetResult ga = tcp.get(k);
    const ctrl::GetResult gb = inproc.get(k);
    EXPECT_EQ(ga.status, gb.status) << k;
    EXPECT_EQ(ga.value, gb.value) << k;
  }

  // Admin shard-down parity: the same keys become unavailable.
  tcp.set_shard_up(0, false);
  inproc.set_shard_up(0, false);
  EXPECT_FALSE(tcp.shard_up(0));
  const ctrl::MultiGetResult da = tcp.multi_get(all_keys);
  const ctrl::MultiGetResult db = inproc.multi_get(all_keys);
  ASSERT_EQ(da.entries.size(), db.entries.size());
  for (std::size_t i = 0; i < da.entries.size(); ++i) {
    EXPECT_EQ(da.entries[i].status, db.entries[i].status) << all_keys[i];
  }
  tcp.set_shard_up(0, true);
  inproc.set_shard_up(0, true);
  const ctrl::MultiGetResult ua = tcp.multi_get(all_keys);
  EXPECT_TRUE(ua.all_available());
}

TEST(TcpTransportTest, ResyncReplaysFullStateAfterServerRestart) {
  auto s0 = std::make_unique<TestServer>();
  TestServer s1;
  ASSERT_TRUE(s0->start());
  ASSERT_TRUE(s1.start());
  const std::uint16_t port0 = s0->server.port();

  net::TcpTransportOptions o;
  o.ports = {port0, s1.server.port()};
  o.request_timeout_ms = 5000;
  o.backoff_initial_ms = 10;
  net::TcpKvTransport tcp(o);

  std::vector<std::pair<std::string, std::string>> batch;
  for (int i = 0; i < 12; ++i) {
    batch.emplace_back("path/" + std::to_string(i), "v" + std::to_string(i));
  }
  const ctrl::Version v1 = tcp.publish(batch);

  // "Crash" shard 0 and publish while it is gone (its share is only in
  // the controller-side mirror now).
  tcp.set_reachable(0, false);
  s0.reset();
  ctrl::KvDelta delta;
  for (int i = 0; i < 12; ++i) {
    delta.upserts.emplace_back("path/" + std::to_string(i), "w" + std::to_string(i));
  }
  const ctrl::Version v2 = tcp.publish_delta(delta);
  EXPECT_EQ(v2, v1 + 1);

  // Restart empty on the same port in recovery mode, then resync.
  net::ShardServerOptions so;
  so.port = port0;
  so.recovering = true;
  TestServer back(so);
  ASSERT_TRUE(back.start());
  ASSERT_TRUE(tcp.resync_shard(0));

  // Every key reads back at the post-crash state and version.
  std::vector<std::string> keys;
  for (int i = 0; i < 12; ++i) keys.push_back("path/" + std::to_string(i));
  const ctrl::MultiGetResult r = tcp.multi_get(keys);
  EXPECT_TRUE(r.all_available());
  EXPECT_EQ(r.version, v2);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(r.entries[i].value, "w" + std::to_string(i)) << keys[i];
  }

  back.shutdown();
  EXPECT_EQ(back.kv.version(), v2);
  EXPECT_EQ(back.server.stats().snapshots, 1u);
}

TEST(TcpTransportTest, AgentRoleVersionTracksTheNewestShard) {
  TwoShardRig rig;
  ASSERT_TRUE(rig.start());
  // Controller publishes through its own transport...
  rig.transport->publish({{"path/1", "a"}, {"path/2", "b"}});
  rig.transport->publish({{"path/1", "c"}});

  // ...and an agent-role transport on the same ports observes the
  // version and the data without ever writing.
  net::TcpTransportOptions o;
  o.ports = {rig.s0.server.port(), rig.s1.server.port()};
  o.role = net::HelloMsg::kRoleAgent;
  o.peer_name = "agent";
  o.request_timeout_ms = 5000;
  net::TcpKvTransport agent(o);
  EXPECT_EQ(agent.version(), 2u);
  const ctrl::GetResult g = agent.get("path/1");
  EXPECT_EQ(g.status, GetStatus::kOk);
  EXPECT_EQ(g.value, "c");
}

}  // namespace
}  // namespace megate
