// Tests for the epoch-snapshot TE database (PR 4): GetResult semantics
// and version tags, copy-on-write delta publishes with erases, snapshot
// growth/rebuild accounting, the versioned redo log's put/publish
// interleaving, multi_get's consistent cut — plus a concurrency suite
// (readers + publisher + shard flaps, run under TSan in ci.sh) and the
// batched-pull property suite asserting KvStore::multi_get-based agent
// pulls are behaviourally identical to per-key pulls under every fault
// plan kind from the PR-1 harness.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "megate/ctrl/agent.h"
#include "megate/ctrl/controller.h"
#include "megate/ctrl/kvstore.h"
#include "megate/fault/chaos.h"
#include "megate/obs/metrics.h"
#include "megate/obs/span.h"

namespace megate {
namespace {

using ctrl::GetResult;
using ctrl::GetStatus;
using ctrl::KvDelta;
using ctrl::KvStore;
using ctrl::MultiGetResult;
using ctrl::Version;

// --- GetResult semantics ----------------------------------------------------

TEST(KvSnapshotTest, GetResultCarriesStatusValueAndVersion) {
  KvStore kv(2);
  EXPECT_EQ(kv.try_get("absent").status, GetStatus::kMiss);
  EXPECT_TRUE(kv.try_get("absent").value.empty());
  EXPECT_EQ(kv.try_get("absent").version, 0u);

  const Version v1 = kv.publish({{"a", "1"}, {"b", "2"}});
  const GetResult hit = kv.try_get("a");
  EXPECT_EQ(hit.status, GetStatus::kOk);
  EXPECT_TRUE(hit.ok());
  EXPECT_EQ(hit.value, "1");
  EXPECT_EQ(hit.version, v1);
  // A miss after a publish still reports the version it is consistent
  // with: the caller can tell "absent as of v1" from "absent, never
  // published".
  EXPECT_EQ(kv.try_get("absent").version, v1);
}

TEST(KvSnapshotTest, PutDoesNotBumpVersionButPublishDoes) {
  KvStore kv(2);
  kv.put("k", "v");
  EXPECT_EQ(kv.version(), 0u);
  EXPECT_EQ(kv.try_get("k").value, "v");
  const Version v = kv.publish({{"k", "w"}});
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(kv.version(), 1u);
  EXPECT_EQ(kv.try_get("k").value, "w");
}

TEST(KvSnapshotTest, VersionTagIsMonotonePerKey) {
  KvStore kv(4);
  Version last = 0;
  for (int round = 0; round < 5; ++round) {
    const Version v = kv.publish({{"key", std::to_string(round)}});
    const GetResult r = kv.try_get("key");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, std::to_string(round));
    EXPECT_GT(r.version, last);
    EXPECT_EQ(r.version, v);
    last = r.version;
  }
}

// --- delta publish ----------------------------------------------------------

TEST(KvSnapshotTest, PublishDeltaAppliesUpsertsAndErases) {
  KvStore kv(2);
  kv.publish({{"a", "1"}, {"b", "2"}, {"c", "3"}});

  KvDelta delta;
  delta.upserts = {{"b", "20"}, {"d", "4"}};
  delta.erases = {"c", "never-existed"};
  const Version v2 = kv.publish_delta(delta);
  EXPECT_EQ(v2, 2u);

  EXPECT_EQ(kv.try_get("a").value, "1");   // untouched key survives
  EXPECT_EQ(kv.try_get("b").value, "20");  // upsert replaced
  EXPECT_EQ(kv.try_get("d").value, "4");   // upsert inserted
  EXPECT_EQ(kv.try_get("c").status, GetStatus::kMiss);  // erased
  EXPECT_EQ(kv.size(), 3u);
}

TEST(KvSnapshotTest, DeltaBytesCountLogicalPayload) {
  KvStore kv(2);
  KvDelta delta;
  delta.upserts = {{"key1", "value1"}, {"key2", "vv"}};
  delta.erases = {"key3"};
  const std::uint64_t before = kv.delta_bytes();
  kv.publish_delta(delta);
  EXPECT_EQ(kv.delta_bytes() - before, delta.bytes());
  EXPECT_EQ(kv.delta_keys(), 3u);
  // Accounting is the same for full publishes (upserts-only deltas).
  const std::uint64_t mid = kv.delta_bytes();
  kv.publish({{"abc", "de"}});
  EXPECT_EQ(kv.delta_bytes() - mid, 5u);
}

TEST(KvSnapshotTest, EmptyDeltaStillBumpsVersion) {
  KvStore kv(2);
  const Version v = kv.publish_delta(KvDelta{});
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(kv.version(), 1u);
}

TEST(KvSnapshotTest, SmallDeltaDoesNotRebuildStableTable) {
  KvStore kv(1);
  // Build a table large enough that its bucket array is settled.
  std::vector<std::pair<std::string, std::string>> batch;
  for (int i = 0; i < 256; ++i) {
    batch.emplace_back("key/" + std::to_string(i), "*:1,2,3");
  }
  kv.publish(batch);
  const std::uint64_t rebuilds = kv.snapshot_rebuilds();
  const std::uint64_t installs = kv.snapshot_installs();

  // A churn-sized delta clones touched buckets only: one new snapshot,
  // zero full rehashes.
  KvDelta delta;
  for (int i = 0; i < 16; ++i) {
    delta.upserts.emplace_back("key/" + std::to_string(i), "*:4,5");
  }
  kv.publish_delta(delta);
  EXPECT_EQ(kv.snapshot_rebuilds(), rebuilds);
  EXPECT_EQ(kv.snapshot_installs(), installs + 1);
}

TEST(KvSnapshotTest, GrowthTriggersRebuild) {
  KvStore kv(1);
  EXPECT_EQ(kv.snapshot_rebuilds(), 0u);
  std::vector<std::pair<std::string, std::string>> batch;
  for (int i = 0; i < 512; ++i) {
    batch.emplace_back("grow/" + std::to_string(i), "v");
  }
  kv.publish(batch);
  EXPECT_GT(kv.snapshot_rebuilds(), 0u);
  for (int i = 0; i < 512; ++i) {
    EXPECT_TRUE(kv.try_get("grow/" + std::to_string(i)).ok());
  }
}

TEST(KvSnapshotTest, PayloadBytesTrackUpsertsAndErases) {
  KvStore kv(2);
  kv.publish({{"ab", "cd"}});  // 4 payload bytes
  EXPECT_EQ(kv.payload_bytes(), 4u);
  KvDelta delta;
  delta.upserts = {{"ab", "cdef"}};  // value grows by 2
  kv.publish_delta(delta);
  EXPECT_EQ(kv.payload_bytes(), 6u);
  delta = {};
  delta.erases = {"ab"};
  kv.publish_delta(delta);
  EXPECT_EQ(kv.payload_bytes(), 0u);
  EXPECT_EQ(kv.size(), 0u);
}

// --- versioned redo log (satellite: replay ordering) ------------------------

TEST(KvSnapshotTest, RedoLogReplaysPutsAndPublishesInArrivalOrder) {
  KvStore kv(1);
  kv.publish({{"key", "v0"}});
  kv.set_shard_up(0, false);

  // Interleave unversioned puts with versioned publish deltas while the
  // shard is down. Recovery must apply them in arrival order — the last
  // arrival wins, whether or not it carried a publish version.
  kv.put("key", "put1");
  KvDelta d1;
  d1.upserts = {{"key", "pub1"}};
  const Version v_pub1 = kv.publish_delta(d1);
  kv.put("key", "put2");
  EXPECT_EQ(kv.redo_buffered(), 3u);

  kv.set_shard_up(0, true);
  EXPECT_EQ(kv.redo_replayed(), 3u);
  const GetResult r = kv.try_get("key");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, "put2");  // arrival order, not version order
  // The recovered shard's tag reflects the replayed publish: reads are
  // consistent with v_pub1 even though a plain put arrived after it.
  EXPECT_GE(r.version, v_pub1);
}

TEST(KvSnapshotTest, RedoLogReplaysPublishAfterPutOverwrite) {
  KvStore kv(1);
  kv.set_shard_up(0, false);
  kv.put("key", "put1");
  KvDelta d;
  d.upserts = {{"key", "pub1"}};
  kv.publish_delta(d);
  kv.set_shard_up(0, true);
  EXPECT_EQ(kv.try_get("key").value, "pub1");  // publish arrived last
}

TEST(KvSnapshotTest, RedoLogReplaysVersionedErase) {
  KvStore kv(1);
  kv.publish({{"gone", "x"}, {"kept", "y"}});
  kv.set_shard_up(0, false);
  KvDelta d;
  d.erases = {"gone"};
  const Version v = kv.publish_delta(d);
  kv.set_shard_up(0, true);
  EXPECT_EQ(kv.try_get("gone").status, GetStatus::kMiss);
  const GetResult kept = kv.try_get("kept");
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept.value, "y");
  EXPECT_GE(kept.version, v);
}

// --- multi_get --------------------------------------------------------------

TEST(KvSnapshotTest, MultiGetReturnsOneConsistentCut) {
  KvStore kv(4);
  const Version v = kv.publish({{"a", "1"}, {"b", "2"}, {"c", "3"}});
  const MultiGetResult r = kv.multi_get({"a", "missing", "c"});
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.version, v);
  ASSERT_EQ(r.entries.size(), 3u);  // parallel to the requested keys
  EXPECT_EQ(r.entries[0].value, "1");
  EXPECT_EQ(r.entries[1].status, GetStatus::kMiss);
  EXPECT_EQ(r.entries[2].value, "3");
  EXPECT_TRUE(r.all_available());
  EXPECT_EQ(kv.multi_get_count(), 1u);
}

TEST(KvSnapshotTest, MultiGetFlagsDownShardEntries) {
  KvStore kv(4);
  kv.publish({{"a", "1"}, {"b", "2"}});
  kv.set_shard_up(kv.shard_index("a"), false);
  const MultiGetResult r = kv.multi_get({"a", "b"});
  EXPECT_EQ(r.entries[0].status, GetStatus::kUnavailable);
  EXPECT_FALSE(r.all_available());
  if (kv.shard_index("b") != kv.shard_index("a")) {
    EXPECT_EQ(r.entries[1].status, GetStatus::kOk);
  }
}

TEST(KvSnapshotTest, MultiGetCountsOneQueryPerKey) {
  KvStore kv(2);
  kv.publish({{"a", "1"}, {"b", "2"}, {"c", "3"}});
  const std::uint64_t before = kv.query_count();
  kv.multi_get({"a", "b", "c"});
  EXPECT_EQ(kv.query_count() - before, 3u);
  std::uint64_t shard_sum = 0;
  for (std::size_t s = 0; s < kv.num_shards(); ++s) {
    shard_sum += kv.shard_query_count(s);
  }
  EXPECT_EQ(shard_sum, kv.query_count());
}

// --- reset_to (replication catch-up) ----------------------------------------

TEST(KvSnapshotTest, ResetToReplacesStateAndJumpsVersion) {
  KvStore kv(2);
  kv.publish({{"a", "1"}, {"b", "2"}});
  kv.publish({{"c", "3"}});
  ASSERT_EQ(kv.version(), 2u);

  // A restarted replica catches up: full snapshot at a later version.
  KvDelta snapshot;
  snapshot.upserts = {{"a", "10"}, {"d", "40"}};
  EXPECT_EQ(kv.reset_to(snapshot, 7), 7u);
  EXPECT_EQ(kv.version(), 7u);
  EXPECT_EQ(kv.try_get("a").value, "10");
  EXPECT_EQ(kv.try_get("d").value, "40");
  // Keys absent from the snapshot are gone (it is the complete state).
  EXPECT_EQ(kv.try_get("b").status, GetStatus::kMiss);
  EXPECT_EQ(kv.try_get("c").status, GetStatus::kMiss);
  // All shards are up after a reset, even if they were down before.
  for (std::size_t i = 0; i < kv.num_shards(); ++i) {
    EXPECT_TRUE(kv.shard_up(i));
  }
  // Rewinding the version is refused — versions are monotone.
  EXPECT_THROW(kv.reset_to(snapshot, 3), std::invalid_argument);
  // Re-applying at the same version is idempotent catch-up.
  EXPECT_EQ(kv.reset_to(snapshot, 7), 7u);
}

TEST(KvSnapshotTest, ResetToRevivesDownShardWithoutRedoReplay) {
  KvStore kv(2);
  kv.publish({{"a", "1"}});
  for (std::size_t i = 0; i < kv.num_shards(); ++i) {
    kv.set_shard_up(i, false);
  }
  kv.publish({{"a", "2"}, {"b", "9"}});  // buffered in the redo log
  KvDelta snapshot;
  snapshot.upserts = {{"a", "2"}, {"b", "9"}};
  kv.reset_to(snapshot, kv.version());
  // The snapshot IS the replayed state; the redo log must not re-apply
  // on a later set_shard_up(true).
  for (std::size_t i = 0; i < kv.num_shards(); ++i) {
    kv.set_shard_up(i, true);
  }
  EXPECT_EQ(kv.try_get("a").value, "2");
  EXPECT_EQ(kv.try_get("b").value, "9");
  EXPECT_EQ(kv.redo_replayed(), 0u);
}

// --- concurrency (run under TSan by ci.sh) ----------------------------------

TEST(KvSnapshotConcurrency, LockFreeReadersUnderPublishStorm) {
  KvStore kv(2);
  constexpr int kKeys = 64;
  static constexpr int kRounds = 200;
  std::vector<std::string> keys;
  for (int i = 0; i < kKeys; ++i) keys.push_back("k/" + std::to_string(i));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&kv, &keys, &stop] {
      Version last = 0;
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const GetResult r = kv.try_get(keys[i++ % keys.size()]);
        if (r.ok()) {
          // Every value a reader can observe is a round number some
          // publish installed — never a torn or freed string.
          const int round = std::stoi(r.value);
          EXPECT_GE(round, 0);
          EXPECT_LT(round, kRounds);
        }
        const Version v = kv.version();
        EXPECT_GE(v, last);  // version is monotone under readers
        last = v;
      }
    });
  }

  for (int round = 0; round < kRounds; ++round) {
    KvDelta delta;
    // Churn a sliding window of keys each round.
    for (int j = 0; j < 8; ++j) {
      delta.upserts.emplace_back(keys[(round * 8 + j) % kKeys],
                                 std::to_string(round));
    }
    kv.publish_delta(delta);
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(kv.version(), static_cast<Version>(kRounds));
}

TEST(KvSnapshotConcurrency, MultiGetCutIsUniformWhileConsistent) {
  // Every publish writes the same round number to all keys, so a
  // consistent multi_get cut must be uniform: observing two different
  // round numbers in one consistent result would be a torn snapshot.
  KvStore kv(4);
  constexpr int kKeys = 32;
  std::vector<std::string> keys;
  std::vector<std::pair<std::string, std::string>> batch;
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back("k/" + std::to_string(i));
    batch.emplace_back(keys.back(), "0");
  }
  kv.publish(batch);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> consistent_cuts{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const MultiGetResult r = kv.multi_get(keys);
        if (!r.consistent) continue;  // retry budget exhausted: best effort
        consistent_cuts.fetch_add(1, std::memory_order_relaxed);
        ASSERT_EQ(r.entries.size(), keys.size());
        const std::string& first = r.entries.front().value;
        for (const GetResult& e : r.entries) {
          ASSERT_TRUE(e.ok());
          EXPECT_EQ(e.value, first) << "torn cut at version " << r.version;
          EXPECT_LE(e.version, r.version);
        }
      }
    });
  }

  for (int round = 1; round <= 300; ++round) {
    for (auto& kvp : batch) kvp.second = std::to_string(round);
    kv.publish(batch);
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  // Mid-storm consistent cuts are best-effort on a loaded machine (the
  // seqlock retry budget can be outrun by back-to-back publishes), but
  // once publishes quiesce a cut must succeed and carry the final round.
  const MultiGetResult last = kv.multi_get(keys);
  ASSERT_TRUE(last.consistent);
  EXPECT_EQ(last.version, static_cast<Version>(301));
  for (const GetResult& e : last.entries) EXPECT_EQ(e.value, "300");
  (void)consistent_cuts;
}

TEST(KvSnapshotConcurrency, ShardFlapsWithReadersAndWriters) {
  KvStore kv(2);
  kv.publish({{"stable", "s"}});
  std::atomic<bool> stop{false};

  std::thread flapper([&] {
    for (int i = 0; i < 200; ++i) {
      kv.set_shard_up(i % 2, false);
      kv.set_shard_up(i % 2, true);
    }
    stop.store(true);
  });
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      kv.put("w/" + std::to_string(i % 16), std::to_string(i));
      ++i;
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const GetResult r = kv.try_get("stable");
        // Down shard reads refuse cleanly; they never return torn data.
        if (r.ok()) {
          EXPECT_EQ(r.value, "s");
        }
      }
    });
  }
  flapper.join();
  writer.join();
  for (auto& t : readers) t.join();
  // Every buffered write was replayed by the final recovery.
  EXPECT_EQ(kv.redo_buffered(), kv.redo_replayed());
  EXPECT_EQ(kv.try_get("stable").value, "s");
}

TEST(KvSnapshotConcurrency, PutsAndErasesRaceWithReaders) {
  KvStore kv(4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&kv, &stop, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string key =
            "t" + std::to_string(t) + "/" + std::to_string(i % 32);
        kv.put(key, std::to_string(i));
        if (i % 3 == 0) kv.erase(key);
        ++i;
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&kv, &stop, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)kv.try_get("t" + std::to_string(t) + "/" +
                         std::to_string(i++ % 32));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& t : workers) t.join();
  for (auto& t : readers) t.join();
}

// --- batched-pull property suite (satellite) --------------------------------

fault::ChaosOptions property_chaos_options() {
  fault::ChaosOptions opt;
  opt.sites = 8;
  opt.duplex_links = 12;
  opt.endpoints_per_site = 2;
  opt.intervals = 8;
  opt.interval_s = 15.0;
  opt.poll_interval_s = 4.0;
  opt.instances_per_agent = 3;
  opt.plan.seed = 21;
  opt.plan.horizon_s = 0.0;
  opt.plan.quiet_tail_s = 45.0;
  opt.plan.shard_crashes = 0;
  opt.plan.link_failures = 0;
  opt.plan.pull_drop_windows = 0;
  opt.plan.stale_windows = 0;
  return opt;
}

// One fault plan per PR-1 fault kind, plus the all-kinds mix: the batched
// pull protocol must be byte-identical to per-key pulls under each.
std::vector<std::pair<std::string, fault::ChaosOptions>>
property_fault_plans() {
  std::vector<std::pair<std::string, fault::ChaosOptions>> plans;
  {
    auto o = property_chaos_options();
    plans.emplace_back("fault-free", o);
  }
  {
    auto o = property_chaos_options();
    o.plan.shard_crashes = 2;
    plans.emplace_back("shard-crashes", o);
  }
  {
    auto o = property_chaos_options();
    o.plan.link_failures = 2;
    plans.emplace_back("link-failures", o);
  }
  {
    auto o = property_chaos_options();
    o.plan.pull_drop_windows = 2;
    plans.emplace_back("pull-drops", o);
  }
  {
    auto o = property_chaos_options();
    o.plan.stale_windows = 2;
    plans.emplace_back("stale-reads", o);
  }
  {
    auto o = property_chaos_options();
    o.plan.seed = 22;
    o.plan.shard_crashes = 2;
    o.plan.link_failures = 1;
    o.plan.pull_drop_windows = 1;
    o.plan.stale_windows = 1;
    plans.emplace_back("all-kinds", o);
  }
  return plans;
}

TEST(BatchedPullPropertyTest, FingerprintMatchesPerKeyUnderEveryFaultPlan) {
  for (const auto& [name, base] : property_fault_plans()) {
    auto per_key = base;
    per_key.batch_pull = false;
    auto batched = base;
    batched.batch_pull = true;
    const auto a = fault::run_chaos(per_key);
    const auto b = fault::run_chaos(batched);
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "plan: " << name;
    EXPECT_EQ(a.event_log, b.event_log) << "plan: " << name;
    EXPECT_EQ(a.violations, b.violations) << "plan: " << name;
    EXPECT_EQ(a.final_version, b.final_version) << "plan: " << name;
    EXPECT_EQ(a.counters.fallbacks_last_good, b.counters.fallbacks_last_good)
        << "plan: " << name;
    EXPECT_EQ(a.counters.publishes, b.counters.publishes) << "plan: " << name;
    // The batched run answered the same pulls with fewer DB queries
    // (pulls count route entries fetched OK, identical across modes).
    EXPECT_EQ(a.counters.pulls, b.counters.pulls) << "plan: " << name;
  }
}

TEST(BatchedPullPropertyTest, StalenessDistributionMatchesPerKey) {
  ctrl::AgentOptions opt;
  opt.poll_interval_s = 5.0;

  auto lags_for = [&opt](bool batch) {
    KvStore kv(4);
    ctrl::AgentOptions o = opt;
    o.batch_pull = batch;
    return ctrl::measure_sync_lags(kv, /*n_instances=*/240, o,
                                   /*publish_at_s=*/20.0, /*horizon_s=*/60.0,
                                   /*tick_step_s=*/0.5,
                                   /*instances_per_agent=*/4);
  };
  const std::vector<double> per_key = lags_for(false);
  const std::vector<double> batched = lags_for(true);
  ASSERT_EQ(per_key.size(), 240u);
  // Same apply-lag distribution, instance for instance: batching changes
  // how entries are fetched, never when an instance converges.
  EXPECT_EQ(per_key, batched);
}

TEST(BatchedPullPropertyTest, BatchedRunIssuesFewerDbQueries) {
  auto per_key = property_chaos_options();
  auto batched = property_chaos_options();
  batched.batch_pull = true;
  obs::MetricsRegistry ra, rb;
  per_key.metrics = &ra;
  batched.metrics = &rb;
  (void)fault::run_chaos(per_key);
  (void)fault::run_chaos(batched);
  const auto sa = ra.snapshot();
  const auto sb = rb.snapshot();
  const std::uint64_t qa = sa.counters.at("kv.queries");
  const std::uint64_t qb = sb.counters.at("kv.queries");
  EXPECT_GT(qa, 0u);
  // Batched pulls still read one entry per instance (query_count counts
  // keys served), but each host resolves them through multi_get; the
  // multi_get counter proves the batched path actually ran.
  EXPECT_GT(sb.counters.at("kv.multi_gets"), 0u);
  EXPECT_EQ(sa.counters.at("kv.multi_gets"), 0u);
  EXPECT_EQ(qa, qb);  // same logical reads either way
}

}  // namespace
}  // namespace megate
