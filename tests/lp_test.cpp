// Unit and property tests for megate::lp — the exact simplex, the
// approximate packing solver, and the cross-check between them on random
// packing LPs (the correctness backbone of MaxSiteFlow).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "megate/lp/model.h"
#include "megate/lp/packing.h"
#include "megate/lp/simplex.h"
#include "megate/util/rng.h"

namespace megate::lp {
namespace {

// --- Model ---------------------------------------------------------------

TEST(LpModel, BuildAndQuery) {
  Model m;
  const auto x = m.add_variable(2.0);
  const auto r = m.add_constraint(5.0);
  m.add_coefficient(r, x, 1.5);
  EXPECT_EQ(m.num_variables(), 1u);
  EXPECT_EQ(m.num_constraints(), 1u);
  EXPECT_EQ(m.num_nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(m.objective_coef(x), 2.0);
  EXPECT_DOUBLE_EQ(m.rhs(r), 5.0);
}

TEST(LpModel, DuplicateCoefficientsAccumulate) {
  Model m;
  const auto x = m.add_variable(1.0);
  const auto r = m.add_constraint(10.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, x, 2.0);
  EXPECT_EQ(m.num_nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(m.column(x)[0].coef, 3.0);
}

TEST(LpModel, RejectsNegativeRhs) {
  Model m;
  EXPECT_THROW(m.add_constraint(-1.0), std::invalid_argument);
}

TEST(LpModel, RejectsNonPositiveCoefficient) {
  Model m;
  const auto x = m.add_variable(1.0);
  const auto r = m.add_constraint(1.0);
  EXPECT_THROW(m.add_coefficient(r, x, 0.0), std::invalid_argument);
  EXPECT_THROW(m.add_coefficient(r, x, -2.0), std::invalid_argument);
}

TEST(LpModel, RejectsOutOfRange) {
  Model m;
  m.add_variable(1.0);
  m.add_constraint(1.0);
  EXPECT_THROW(m.add_coefficient(5, 0, 1.0), std::out_of_range);
  EXPECT_THROW(m.add_coefficient(0, 5, 1.0), std::out_of_range);
}

TEST(LpModel, ObjectiveAndViolation) {
  Model m;
  const auto x = m.add_variable(3.0);
  const auto y = m.add_variable(1.0);
  const auto r = m.add_constraint(4.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  std::vector<double> point{2.0, 3.0};
  EXPECT_DOUBLE_EQ(m.objective_value(point), 9.0);
  EXPECT_DOUBLE_EQ(m.max_violation(point), 1.0);  // 5 > 4
  point = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(m.max_violation(point), 0.0);
}

// --- Simplex on hand-checked instances -------------------------------------

TEST(Simplex, SingleVariableCapacity) {
  // max 2x s.t. x <= 7 -> x = 7.
  Model m;
  const auto x = m.add_variable(2.0);
  m.add_coefficient(m.add_constraint(7.0), x, 1.0);
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 7.0, 1e-9);
  EXPECT_NEAR(s.objective, 14.0, 1e-9);
}

TEST(Simplex, ClassicTwoVariable) {
  // max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 -> (2, 6), obj 36.
  Model m;
  const auto x = m.add_variable(3.0);
  const auto y = m.add_variable(5.0);
  const auto r1 = m.add_constraint(4.0);
  const auto r2 = m.add_constraint(12.0);
  const auto r3 = m.add_constraint(18.0);
  m.add_coefficient(r1, x, 1.0);
  m.add_coefficient(r2, y, 2.0);
  m.add_coefficient(r3, x, 3.0);
  m.add_coefficient(r3, y, 2.0);
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-9);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
  EXPECT_NEAR(s.x[y], 6.0, 1e-9);
}

TEST(Simplex, DetectsUnbounded) {
  // max x with no constraint rows on x.
  Model m;
  m.add_variable(1.0);
  m.add_constraint(1.0);  // unrelated row
  Solution s = SimplexSolver().solve(m);
  EXPECT_EQ(s.status, Status::kUnbounded);
}

TEST(Simplex, ZeroRhsPinsVariable) {
  Model m;
  const auto x = m.add_variable(1.0);
  m.add_coefficient(m.add_constraint(0.0), x, 1.0);
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 0.0, 1e-12);
}

TEST(Simplex, EmptyModel) {
  Model m;
  Solution s = SimplexSolver().solve(m);
  EXPECT_EQ(s.status, Status::kOptimal);
  EXPECT_EQ(s.objective, 0.0);
}

TEST(Simplex, NegativeProfitStaysAtZero) {
  Model m;
  const auto x = m.add_variable(-1.0);
  m.add_coefficient(m.add_constraint(5.0), x, 1.0);
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 0.0, 1e-12);
}

TEST(Simplex, RefusesOversizedTableau) {
  SimplexOptions opt;
  opt.max_tableau_doubles = 10;  // absurdly small
  Model m;
  for (int i = 0; i < 4; ++i) {
    const auto x = m.add_variable(1.0);
    m.add_coefficient(m.add_constraint(1.0), x, 1.0);
  }
  Solution s = SimplexSolver(opt).solve(m);
  EXPECT_EQ(s.status, Status::kInvalidModel);
}

TEST(Simplex, SharedResourceSplit) {
  // Two variables share one unit-capacity row; higher profit wins fully.
  Model m;
  const auto x = m.add_variable(2.0);
  const auto y = m.add_variable(1.0);
  const auto r = m.add_constraint(1.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 1.0, 1e-9);
  EXPECT_NEAR(s.x[y], 0.0, 1e-9);
}

// --- Simplex warm start -----------------------------------------------------

namespace {

/// A little two-pair "site LP" shape: four variables, two demand rows and
/// one shared capacity row. Structure fixed, rhs parameterized.
Model two_pair_model(double d1, double d2, double cap) {
  Model m;
  const auto a1 = m.add_variable(1.0);
  const auto a2 = m.add_variable(0.9);
  const auto b1 = m.add_variable(1.0);
  const auto b2 = m.add_variable(0.8);
  const auto rd1 = m.add_constraint(d1);
  const auto rd2 = m.add_constraint(d2);
  const auto rc = m.add_constraint(cap);
  m.add_coefficient(rd1, a1, 1.0);
  m.add_coefficient(rd1, a2, 1.0);
  m.add_coefficient(rd2, b1, 1.0);
  m.add_coefficient(rd2, b2, 1.0);
  m.add_coefficient(rc, a1, 1.0);
  m.add_coefficient(rc, b1, 1.0);
  return m;
}

}  // namespace

TEST(SimplexWarmStart, RhsOnlyChangeSolvesWithZeroPivots) {
  const Model first = two_pair_model(3.0, 4.0, 100.0);
  SimplexWarmState warm;
  Solution cold = SimplexSolver().solve(first, nullptr, &warm);
  ASSERT_EQ(cold.status, Status::kOptimal);
  EXPECT_FALSE(cold.warm_start_used);
  ASSERT_TRUE(warm.valid());
  EXPECT_GT(cold.iterations, 0u);

  // Same structure, perturbed demands: the old basis stays optimal.
  const Model second = two_pair_model(3.5, 3.8, 100.0);
  Solution hot = SimplexSolver().solve(second, &warm);
  ASSERT_EQ(hot.status, Status::kOptimal);
  EXPECT_TRUE(hot.warm_start_used);
  EXPECT_EQ(hot.iterations, 0u);

  Solution ref = SimplexSolver().solve(second);
  ASSERT_EQ(ref.status, Status::kOptimal);
  EXPECT_NEAR(hot.objective, ref.objective, 1e-9);
  for (std::size_t j = 0; j < ref.x.size(); ++j) {
    EXPECT_NEAR(hot.x[j], ref.x[j], 1e-9) << "variable " << j;
  }
}

TEST(SimplexWarmStart, StructuralChangeFallsBackCold) {
  const Model first = two_pair_model(3.0, 4.0, 100.0);
  SimplexWarmState warm;
  ASSERT_EQ(SimplexSolver().solve(first, nullptr, &warm).status,
            Status::kOptimal);

  // A structurally different model must miss the hash and solve cold.
  Model different;
  const auto v = different.add_variable(2.5);
  const auto r = different.add_constraint(1.0);
  different.add_coefficient(r, v, 1.0);
  Solution s = SimplexSolver().solve(different, &warm);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_FALSE(s.warm_start_used);
  EXPECT_NEAR(s.x[v], 1.0, 1e-9);
}

TEST(SimplexWarmStart, InfeasibleBasisFallsBackCold) {
  // First solve at high capacity: both a1 and b1 basic with large values.
  const Model first = two_pair_model(30.0, 40.0, 100.0);
  SimplexWarmState warm;
  ASSERT_EQ(SimplexSolver().solve(first, nullptr, &warm).status,
            Status::kOptimal);

  // Capacity collapses below the basic values: x_B = B^-1 b' goes negative
  // (the capacity slack leaves feasibility), so the warm path must refuse
  // and the cold fallback must still find the right optimum.
  const Model second = two_pair_model(30.0, 40.0, 10.0);
  Solution s = SimplexSolver().solve(second, &warm);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_FALSE(s.warm_start_used);
  Solution ref = SimplexSolver().solve(second);
  EXPECT_NEAR(s.objective, ref.objective, 1e-9);
}

TEST(SimplexWarmStart, WarmOutIsRefilledOnColdFallback) {
  const Model first = two_pair_model(3.0, 4.0, 100.0);
  SimplexWarmState warm;
  ASSERT_EQ(SimplexSolver().solve(first, nullptr, &warm).status,
            Status::kOptimal);
  const std::uint64_t h1 = warm.model_hash;

  Model different;
  const auto v = different.add_variable(2.5);
  const auto r = different.add_constraint(7.0);
  different.add_coefficient(r, v, 1.0);
  Solution s = SimplexSolver().solve(different, &warm, &warm);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_FALSE(s.warm_start_used);
  EXPECT_NE(warm.model_hash, h1);  // refreshed for the new structure

  // And the refreshed state warm-starts the new structure.
  Solution again = SimplexSolver().solve(different, &warm);
  EXPECT_TRUE(again.warm_start_used);
  EXPECT_NEAR(again.x[v], 7.0, 1e-9);
}

// --- Packing solver ---------------------------------------------------------

TEST(Packing, MatchesSimplexOnSingleRow) {
  Model m;
  const auto x = m.add_variable(1.0);
  m.add_coefficient(m.add_constraint(10.0), x, 2.0);
  Solution s = PackingSolver().solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[x], 5.0, 0.5);
  EXPECT_LE(m.max_violation(s.x), 1e-9);
}

TEST(Packing, FeasibilityIsExact) {
  util::Rng rng(99);
  Model m;
  std::vector<std::size_t> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back(m.add_constraint(rng.uniform(1.0, 50.0)));
  }
  for (int j = 0; j < 200; ++j) {
    const auto x = m.add_variable(rng.uniform(0.5, 2.0));
    const int k = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int c = 0; c < k; ++c) {
      m.add_coefficient(rows[rng.uniform_int(0, rows.size() - 1)], x,
                        rng.uniform(0.5, 1.5));
    }
  }
  Solution s = PackingSolver().solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_LE(m.max_violation(s.x), 1e-6);
  for (double v : s.x) EXPECT_GE(v, 0.0);
}

TEST(Packing, SkipsNonPositiveProfitColumns) {
  Model m;
  const auto x = m.add_variable(-5.0);
  const auto y = m.add_variable(1.0);
  const auto r = m.add_constraint(3.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  Solution s = PackingSolver().solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_DOUBLE_EQ(s.x[x], 0.0);
  EXPECT_NEAR(s.x[y], 3.0, 0.2);
}

TEST(Packing, ZeroCapacityRowKillsColumn) {
  Model m;
  const auto x = m.add_variable(1.0);
  m.add_coefficient(m.add_constraint(0.0), x, 1.0);
  Solution s = PackingSolver().solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_DOUBLE_EQ(s.x[x], 0.0);
}

TEST(Packing, UnboundedDetected) {
  Model m;
  m.add_variable(1.0);  // positive profit, no rows
  Solution s = PackingSolver().solve(m);
  EXPECT_EQ(s.status, Status::kUnbounded);
}

TEST(Packing, RejectsBadEpsilon) {
  Model m;
  const auto x = m.add_variable(1.0);
  m.add_coefficient(m.add_constraint(1.0), x, 1.0);
  PackingOptions opt;
  opt.epsilon = 0.9;
  EXPECT_EQ(PackingSolver(opt).solve(m).status, Status::kInvalidModel);
  EXPECT_EQ(PackingSolver(opt).solve_reference(m).status,
            Status::kInvalidModel);
  opt.epsilon = 0.0;
  EXPECT_EQ(PackingSolver(opt).solve(m).status, Status::kInvalidModel);
  EXPECT_EQ(PackingSolver(opt).solve_reference(m).status,
            Status::kInvalidModel);
}

TEST(Packing, RejectsZeroIterationBudget) {
  // max_iterations == 0 can never route anything; both paths must refuse
  // instead of returning the all-zero iterate labelled kOptimal.
  Model m;
  const auto x = m.add_variable(1.0);
  m.add_coefficient(m.add_constraint(1.0), x, 1.0);
  PackingOptions opt;
  opt.max_iterations = 0;
  EXPECT_EQ(PackingSolver(opt).solve(m).status, Status::kInvalidModel);
  EXPECT_EQ(PackingSolver(opt).solve_reference(m).status,
            Status::kInvalidModel);
  // The sentinel (and any positive cap) stays accepted.
  opt.max_iterations = PackingOptions::kAutoIterations;
  EXPECT_EQ(PackingSolver(opt).solve(m).status, Status::kOptimal);
  opt.max_iterations = 5;
  const Solution s = PackingSolver(opt).solve(m);
  EXPECT_TRUE(s.status == Status::kOptimal || s.status == Status::kIterLimit);
  EXPECT_LE(s.iterations, 5u);
}

TEST(Packing, DualBoundsOptimum) {
  Model m;
  const auto x = m.add_variable(1.0);
  m.add_coefficient(m.add_constraint(10.0), x, 1.0);
  PackingSolver solver;
  Solution s = solver.solve(m);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_GE(solver.last_dual_bound() + 1e-6, s.objective);
}

// --- Packing invariants on both solve paths --------------------------------

namespace {

/// Random packing LP used by the invariant sweep below.
Model random_packing_model(std::uint64_t seed, int nrows, int ncols) {
  util::Rng rng(seed);
  Model m;
  std::vector<std::size_t> rows;
  for (int i = 0; i < nrows; ++i) {
    rows.push_back(m.add_constraint(rng.uniform(2.0, 60.0)));
  }
  for (int j = 0; j < ncols; ++j) {
    const auto x = m.add_variable(rng.uniform(0.3, 2.5));
    const int k = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int t = 0; t < k; ++t) {
      m.add_coefficient(rows[rng.uniform_int(0, rows.size() - 1)], x,
                        rng.uniform(0.3, 1.8));
    }
  }
  return m;
}

}  // namespace

// Property sweep over both the batched solve (serial and 4-thread) and
// the reference loop: the primal iterate is feasible to within rounding,
// bounded above by the exposed dual bound, and — cross-checked against
// the exact simplex — the dual bound really is an upper bound on OPT
// while the primal stays a (1 - 3 eps)-approximation.
TEST(PackingInvariants, FeasibleAndDualBoundedOnAllPaths) {
  const double eps = 0.1;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Model m = random_packing_model(seed * 7919, 6 + seed % 7,
                                         30 + static_cast<int>(seed) * 9);
    const Solution exact = SimplexSolver().solve(m);
    ASSERT_EQ(exact.status, Status::kOptimal) << "seed " << seed;

    for (const std::size_t threads : {1u, 4u}) {
      PackingOptions opt;
      opt.epsilon = eps;
      opt.threads = threads;
      for (const bool reference : {false, true}) {
        if (reference && threads != 1) continue;  // no threads knob there
        PackingSolver solver(opt);
        const Solution s =
            reference ? solver.solve_reference(m) : solver.solve(m);
        const std::string label = (reference ? "reference" : "batched") +
                                  std::string(" threads=") +
                                  std::to_string(threads) + " seed=" +
                                  std::to_string(seed);
        ASSERT_EQ(s.status, Status::kOptimal) << label;
        // Primal feasibility: no row exceeds its rhs beyond rounding.
        EXPECT_LE(m.max_violation(s.x), 1e-6) << label;
        for (double v : s.x) EXPECT_GE(v, 0.0) << label;
        // Weak duality, both against the solver's own bound and OPT.
        const double dual = solver.last_dual_bound();
        EXPECT_LE(s.objective, dual + 1e-6) << label;
        EXPECT_GE(dual, exact.objective - 1e-6) << label;
        // Approximation guarantee.
        EXPECT_GE(s.objective, (1.0 - 3.0 * eps) * exact.objective - 1e-6)
            << label;
        EXPECT_LE(s.objective, exact.objective + 1e-6) << label;
      }
    }
  }
}

// Degenerate shapes must behave identically on the batched and reference
// paths: zero-capacity rows pin their columns, empty models and dead
// columns are kOptimal at zero, a lone unconstrained profitable column is
// unbounded.
TEST(PackingInvariants, DegenerateModelsOnBothPaths) {
  PackingOptions par;
  par.threads = 4;
  const auto both = [&](const Model& m) {
    const Solution a = PackingSolver().solve(m);
    const Solution b = PackingSolver(par).solve(m);
    const Solution c = PackingSolver().solve_reference(m);
    EXPECT_EQ(a.status, c.status);
    EXPECT_EQ(b.status, c.status);
    EXPECT_EQ(a.x, c.x);
    EXPECT_EQ(b.x, c.x);
    return c;
  };

  {
    Model m;  // empty
    EXPECT_EQ(both(m).status, Status::kOptimal);
  }
  {
    Model m;  // single column, single row
    const auto x = m.add_variable(2.0);
    m.add_coefficient(m.add_constraint(4.0), x, 1.0);
    const Solution s = both(m);
    EXPECT_EQ(s.status, Status::kOptimal);
    EXPECT_GT(s.x[x], 0.0);
    EXPECT_LE(m.max_violation(s.x), 1e-9);
  }
  {
    Model m;  // every column dead on a zero-capacity row
    const auto r = m.add_constraint(0.0);
    for (int j = 0; j < 3; ++j) m.add_coefficient(r, m.add_variable(1.0), 1.0);
    const Solution s = both(m);
    EXPECT_EQ(s.status, Status::kOptimal);
    for (double v : s.x) EXPECT_EQ(v, 0.0);
  }
  {
    Model m;  // dead and live columns mixed
    const auto dead_row = m.add_constraint(0.0);
    const auto live_row = m.add_constraint(5.0);
    const auto xd = m.add_variable(10.0);
    m.add_coefficient(dead_row, xd, 1.0);
    const auto xl = m.add_variable(1.0);
    m.add_coefficient(live_row, xl, 1.0);
    const Solution s = both(m);
    EXPECT_EQ(s.status, Status::kOptimal);
    EXPECT_EQ(s.x[xd], 0.0);
    EXPECT_GT(s.x[xl], 0.0);
  }
  {
    Model m;  // only non-positive profits: nothing to pack
    m.add_variable(-1.0);
    m.add_variable(0.0);
    m.add_constraint(3.0);
    EXPECT_EQ(both(m).status, Status::kOptimal);
  }
  {
    Model m;  // profitable column with no rows at all
    m.add_variable(1.0);
    m.add_constraint(1.0);
    EXPECT_EQ(both(m).status, Status::kUnbounded);
  }
}

// Property sweep: on random packing LPs the packing solver must be
// feasible and within (1 - 3 eps) of the simplex optimum.
struct PackingCase {
  std::uint64_t seed;
  int rows;
  int cols;
  double epsilon;
};

class PackingVsSimplex : public ::testing::TestWithParam<PackingCase> {};

TEST_P(PackingVsSimplex, ApproximatesOptimum) {
  const PackingCase c = GetParam();
  util::Rng rng(c.seed);
  Model m;
  std::vector<std::size_t> rows;
  for (int i = 0; i < c.rows; ++i) {
    rows.push_back(m.add_constraint(rng.uniform(5.0, 100.0)));
  }
  for (int j = 0; j < c.cols; ++j) {
    const auto x = m.add_variable(rng.uniform(0.2, 3.0));
    // Each column hits 1-4 distinct rows.
    const int k = 1 + static_cast<int>(rng.uniform_int(0, 3));
    std::set<std::size_t> used;
    for (int t = 0; t < k; ++t) {
      const std::size_t r = rows[rng.uniform_int(0, rows.size() - 1)];
      if (used.insert(r).second) {
        m.add_coefficient(r, x, rng.uniform(0.2, 2.0));
      }
    }
  }
  Solution exact = SimplexSolver().solve(m);
  ASSERT_EQ(exact.status, Status::kOptimal) << "simplex failed";

  PackingOptions opt;
  opt.epsilon = c.epsilon;
  Solution approx = PackingSolver(opt).solve(m);
  ASSERT_EQ(approx.status, Status::kOptimal);
  EXPECT_LE(m.max_violation(approx.x), 1e-6);
  EXPECT_GE(approx.objective,
            (1.0 - 3.0 * c.epsilon) * exact.objective - 1e-6)
      << "approx " << approx.objective << " vs exact " << exact.objective;
  EXPECT_LE(approx.objective, exact.objective + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    RandomPackingLps, PackingVsSimplex,
    ::testing::Values(PackingCase{1, 3, 10, 0.05}, PackingCase{2, 5, 30, 0.1},
                      PackingCase{3, 8, 60, 0.1}, PackingCase{4, 10, 80, 0.05},
                      PackingCase{5, 4, 200, 0.1}, PackingCase{6, 15, 50, 0.1},
                      PackingCase{7, 2, 5, 0.05}, PackingCase{8, 20, 120, 0.1},
                      PackingCase{9, 6, 40, 0.2},
                      PackingCase{10, 12, 90, 0.1}));

}  // namespace
}  // namespace megate::lp
