// Unit + integration tests for megate::obs (ISSUE 3 tentpole): registry
// semantics, log-scale histogram bucketing, span nesting, the JSON export
// schema, concurrency (the ObsConcurrency suite runs under TSan in ci.sh)
// and the single-metrics-path parity guarantees — the registry's view of
// ControlCounters / KvStore telemetry is bit-equal to the original
// storage, with no duplicate counting.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "megate/ctrl/kvstore.h"
#include "megate/ctrl/telemetry.h"
#include "megate/fault/chaos.h"
#include "megate/obs/json.h"
#include "megate/obs/metrics.h"
#include "megate/obs/span.h"

namespace {

using namespace megate;
using obs::Histogram;
using obs::Json;
using obs::MetricsRegistry;

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  reg.counter("a").inc();
  reg.counter("a").inc(41);
  reg.gauge("g").set(2.5);
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a"), 42u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.5);
}

TEST(Metrics, HandleIsStable) {
  MetricsRegistry reg;
  obs::Counter& c1 = reg.counter("x");
  obs::Counter& c2 = reg.counter("x");
  EXPECT_EQ(&c1, &c2);  // same name -> same cell, forever
  c1.inc();
  c2.inc();
  EXPECT_EQ(reg.snapshot().counters.at("x"), 2u);
}

TEST(Metrics, HistogramBucketBoundaries) {
  // Bucket 0 holds v <= 1e-9; bucket i holds (1e-9*2^(i-1), 1e-9*2^i].
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e-9), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.1e-9), 1u);
  EXPECT_EQ(Histogram::bucket_index(2e-9), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.1e-9), 2u);
  // A value above every finite bound lands in the overflow bucket.
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::max()),
            Histogram::kBuckets - 1);
  // upper_bound is the inclusive edge bucket_index assigns by.
  for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::upper_bound(i)), i);
  }
  EXPECT_TRUE(std::isinf(Histogram::upper_bound(Histogram::kBuckets - 1)));
}

TEST(Metrics, HistogramObserve) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h");
  h.observe(1e-3);
  h.observe(2e-3);
  h.observe(0.5);
  auto snap = reg.snapshot();
  const auto& hs = snap.histograms.at("h");
  EXPECT_EQ(hs.count, 3u);
  EXPECT_DOUBLE_EQ(hs.sum, 1e-3 + 2e-3 + 0.5);
  EXPECT_DOUBLE_EQ(hs.min, 1e-3);
  EXPECT_DOUBLE_EQ(hs.max, 0.5);
  std::uint64_t bucket_total = 0;
  for (const auto& [ub, n] : hs.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, 3u);
}

TEST(Metrics, ExposedCounterReadsLiveStorage) {
  MetricsRegistry reg;
  std::uint64_t cell = 7;
  reg.expose_counter("ext", [&cell]() { return cell; });
  EXPECT_EQ(reg.snapshot().counters.at("ext"), 7u);
  cell = 9;  // no re-registration needed: read at snapshot time
  EXPECT_EQ(reg.snapshot().counters.at("ext"), 9u);
}

TEST(Metrics, ExposedCounterReRegistrationReplaces) {
  // The freeze pattern: a short-lived owner re-binds its exported names to
  // value-capturing closures before dying, so snapshots never read freed
  // memory.
  MetricsRegistry reg;
  {
    std::uint64_t local = 123;
    reg.expose_counter("frozen", [&local]() { return local; });
    const std::uint64_t final_value = local;
    reg.expose_counter("frozen", [final_value]() { return final_value; });
  }
  EXPECT_EQ(reg.snapshot().counters.at("frozen"), 123u);
}

TEST(Spans, NestingBuildsPath) {
  MetricsRegistry reg;
  {
    obs::Span outer(reg, "outer");
    { obs::Span inner(reg, "inner"); }
  }
  auto recs = reg.tracer().records();
  ASSERT_EQ(recs.size(), 2u);
  // Inner closes first.
  EXPECT_EQ(recs[0].path, "outer/inner");
  EXPECT_EQ(recs[0].depth, 1u);
  EXPECT_EQ(recs[1].path, "outer");
  EXPECT_EQ(recs[1].depth, 0u);
  EXPECT_GE(recs[1].duration_s, recs[0].duration_s);
  // Finished spans also feed span.<path> histograms.
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.histograms.at("span.outer/inner").count, 1u);
  EXPECT_EQ(snap.histograms.at("span.outer").count, 1u);
}

TEST(Spans, BufferOverflowDropsAndCounts) {
  MetricsRegistry reg;
  obs::SpanTracer tracer(&reg, /*max_records=*/4);
  for (int i = 0; i < 10; ++i) {
    obs::Span s(tracer, "s");
  }
  EXPECT_EQ(tracer.records().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(Spans, WorkerThreadsStartFreshPaths) {
  MetricsRegistry reg;
  {
    obs::Span outer(reg, "outer");
    std::thread worker([&reg]() { obs::Span s(reg, "work"); });
    worker.join();
  }
  bool found_rootless = false;
  for (const auto& r : reg.tracer().records()) {
    if (r.path == "work") found_rootless = r.depth == 0;
  }
  EXPECT_TRUE(found_rootless) << "worker span must not inherit the "
                                 "spawning thread's stack";
}

TEST(MetricsJson, ExportValidatesAgainstSchema) {
  MetricsRegistry reg;
  reg.counter("c").inc(3);
  reg.gauge("g").set(1.25);
  reg.histogram("h").observe(0.25);
  { obs::Span s(reg, "unit"); }
  Json extra = Json::object();
  extra.set("note", Json("hello"));
  const Json doc = obs::metrics_to_json(reg.snapshot(), "test", extra);
  EXPECT_TRUE(obs::validate_metrics_json(doc).empty());
  const Json* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  // Parse(dump) round-trips to an equally valid document.
  auto reparsed = Json::parse(doc.dump(2));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(obs::validate_metrics_json(*reparsed).empty());
  const Json* counters = reparsed->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("c"), nullptr);
}

TEST(MetricsJson, ValidatorRejectsBrokenDocuments) {
  EXPECT_FALSE(obs::validate_metrics_json(Json::object()).empty());
  Json wrong_schema = Json::object();
  wrong_schema.set("schema", Json("nonsense/9"));
  EXPECT_FALSE(obs::validate_metrics_json(wrong_schema).empty());
  Json bad_counters = Json::object();
  bad_counters.set("schema", Json(obs::kMetricsSchema));
  bad_counters.set("source", Json("t"));
  bad_counters.set("counters", Json::array());  // must be an object
  EXPECT_FALSE(obs::validate_metrics_json(bad_counters).empty());
}

TEST(MetricsJson, WriteMetricsJsonToFile) {
  MetricsRegistry reg;
  reg.counter("c").inc();
  const std::string path = "obs_test_out.json";
  ASSERT_TRUE(obs::write_metrics_json(reg, "unit-test", path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = Json::parse(buf.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(obs::validate_metrics_json(*doc).empty());
  const Json* source = doc->find("source");
  ASSERT_NE(source, nullptr);
  std::remove(path.c_str());
}

// --- ObsConcurrency: exercised under TSan by ci.sh --------------------

TEST(ObsConcurrency, ParallelIncrementsAreLossless) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg]() {
      obs::Counter& c = reg.counter("shared");
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.snapshot().counters.at("shared"),
            static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(ObsConcurrency, SnapshotRacesRecordingCleanly) {
  // Writers hammer counters/histograms/spans while a reader snapshots:
  // no torn state, snapshot totals only ever grow.
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&]() {
      obs::Counter& c = reg.counter("events");
      Histogram& h = reg.histogram("lat");
      while (!stop.load(std::memory_order_relaxed)) {
        c.inc();
        h.observe(1e-6);
        obs::Span s(reg, "tick");
      }
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    auto snap = reg.snapshot();
    auto it = snap.counters.find("events");
    if (it != snap.counters.end()) {
      EXPECT_GE(it->second, last);
      last = it->second;
      auto hs = snap.histograms.find("lat");
      if (hs != snap.histograms.end()) {
        EXPECT_LE(hs->second.count, it->second + 4);  // writers mid-loop
      }
    }
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_TRUE(obs::validate_metrics_json(
                  obs::metrics_to_json(reg.snapshot(), "tsan"))
                  .empty());
}

// --- Parity: one metrics path, no duplicate counting -------------------

TEST(MetricsParity, ControlCountersExposureIsBitEqual) {
  MetricsRegistry reg;
  ctrl::ControlCounters counters;
  counters.polls = 3;
  counters.pulls = 2;
  ctrl::register_counters(reg, counters, "ctrl");
  counters.polls = 10;  // mutate after registration: live view
  auto snap = reg.snapshot();
  std::size_t checked = 0;
  ctrl::for_each_counter(counters,
                         [&](const char* name, std::uint64_t v) {
                           EXPECT_EQ(snap.counters.at(std::string("ctrl.") +
                                                      name),
                                     v)
                               << name;
                           ++checked;
                         });
  EXPECT_GE(checked, 10u);  // the whole field table, not a subset
}

TEST(MetricsParity, KvStoreShardQueriesSumToTotal) {
  MetricsRegistry reg;
  ctrl::KvStore kv(4);
  kv.bind_metrics(reg, "kv");
  kv.put("path/1", "a");
  kv.put("path/2", "b");
  for (int i = 0; i < 257; ++i) {
    (void)kv.try_get("path/" + std::to_string(i % 5));
  }
  auto snap = reg.snapshot();
  std::uint64_t shard_sum = 0;
  for (std::size_t s = 0; s < kv.num_shards(); ++s) {
    shard_sum +=
        snap.counters.at("kv.shard" + std::to_string(s) + ".queries");
    EXPECT_EQ(snap.counters.at("kv.shard" + std::to_string(s) + ".queries"),
              kv.shard_query_count(s));
  }
  EXPECT_EQ(shard_sum, kv.query_count());
  EXPECT_EQ(snap.counters.at("kv.queries"), kv.query_count());
  EXPECT_EQ(snap.gauges.at("kv.keys"), static_cast<double>(kv.size()));
}

TEST(MetricsParity, ChaosRunFreezesExactFinalTotals) {
  // End-to-end: a chaos run with a registry attached must (a) leave the
  // deterministic fingerprint untouched and (b) freeze ctrl.*/kv.* totals
  // that are bit-equal to the report's own counters — the "no duplicate
  // counting" acceptance check of ISSUE 3.
  fault::ChaosOptions opt;
  opt.sites = 6;
  opt.duplex_links = 9;
  opt.endpoints_per_site = 2;
  opt.intervals = 6;
  opt.interval_s = 10.0;
  opt.poll_interval_s = 3.0;
  opt.incremental_solve = true;
  opt.plan.seed = 5;
  opt.plan.horizon_s = 0.0;
  opt.plan.quiet_tail_s = 30.0;
  opt.plan.shard_crashes = 1;
  opt.plan.link_failures = 1;

  const fault::ChaosReport bare = fault::run_chaos(opt);

  MetricsRegistry reg;
  opt.metrics = &reg;
  const fault::ChaosReport observed = fault::run_chaos(opt);

  EXPECT_EQ(bare.fingerprint, observed.fingerprint)
      << "metrics wiring must not perturb the deterministic control loop";

  auto snap = reg.snapshot();
  ctrl::for_each_counter(observed.counters,
                         [&](const char* name, std::uint64_t v) {
                           EXPECT_EQ(snap.counters.at(std::string("ctrl.") +
                                                      name),
                                     v)
                               << name;
                         });
  // Shard query counts were frozen at run end and sum to the total.
  std::uint64_t shard_sum = 0;
  for (std::size_t s = 0; s < opt.kv_shards; ++s) {
    shard_sum +=
        snap.counters.at("kv.shard" + std::to_string(s) + ".queries");
  }
  EXPECT_EQ(shard_sum, snap.counters.at("kv.queries"));
  // Solver instruments ran during the run.
  EXPECT_GT(snap.counters.at("chaos.resolves"), 0u);
  EXPECT_GE(snap.histograms.at("ctrl.agent.pull.seconds").count, 1u);
  // And the whole document exports cleanly.
  EXPECT_TRUE(obs::validate_metrics_json(
                  obs::metrics_to_json(snap, "parity-test"))
                  .empty());
}

}  // namespace
