// Tests for the Topology Zoo GML-subset reader.

#include <gtest/gtest.h>

#include <sstream>

#include "megate/topo/gml.h"
#include "megate/topo/tunnels.h"

namespace megate::topo {
namespace {

constexpr const char* kSmallGml = R"(
Creator "Topology Zoo Toolset"
graph [
  directed 0
  label "Tiny"
  node [
    id 0
    label "New York"
    Longitude -74.0
    Latitude 40.7
  ]
  node [
    id 1
    label "Chicago"
    Longitude -87.6
    Latitude 41.8
  ]
  node [
    id 2
    label "Dallas"
    Longitude -96.8
    Latitude 32.8
  ]
  edge [
    source 0
    target 1
    LinkSpeedRaw 10000000000
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 0
    target 2
  ]
]
)";

TEST(Gml, ParsesNodesAndEdges) {
  std::istringstream is(kSmallGml);
  Graph g = read_gml(is);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_links(), 6u);  // 3 duplex links
  EXPECT_NE(g.find_node("New_York"), kInvalidNode);  // spaces sanitized
  EXPECT_NE(g.find_node("Chicago"), kInvalidNode);
  EXPECT_TRUE(g.is_connected());
}

TEST(Gml, LinkSpeedBecomesCapacity) {
  std::istringstream is(kSmallGml);
  Graph g = read_gml(is);
  const NodeId ny = g.find_node("New_York");
  const NodeId chi = g.find_node("Chicago");
  bool found = false;
  for (const Link& l : g.links()) {
    if (l.src == ny && l.dst == chi) {
      EXPECT_DOUBLE_EQ(l.capacity_gbps, 10.0);  // 1e10 bps
      found = true;
    }
    EXPECT_GT(l.capacity_gbps, 0.0);
    EXPECT_GE(l.latency_ms, 0.1);
  }
  EXPECT_TRUE(found);
}

TEST(Gml, LatencyTracksGeography) {
  std::istringstream is(kSmallGml);
  Graph g = read_gml(is);
  const NodeId ny = g.find_node("New_York");
  const NodeId chi = g.find_node("Chicago");
  const NodeId dal = g.find_node("Dallas");
  double ny_chi = 0, ny_dal = 0;
  for (const Link& l : g.links()) {
    if (l.src == ny && l.dst == chi) ny_chi = l.latency_ms;
    if (l.src == ny && l.dst == dal) ny_dal = l.latency_ms;
  }
  EXPECT_GT(ny_dal, ny_chi) << "Dallas is farther from NY than Chicago";
}

TEST(Gml, SkipsSelfLoopsAndDuplicates) {
  std::istringstream is(R"(
graph [
  node [ id 0 label "a" ]
  node [ id 1 label "b" ]
  edge [ source 0 target 0 ]
  edge [ source 0 target 1 ]
  edge [ source 1 target 0 ]
]
)");
  Graph g = read_gml(is);
  EXPECT_EQ(g.num_links(), 2u);  // one duplex link survives
}

TEST(Gml, DeduplicatesRepeatedLabels) {
  std::istringstream is(R"(
graph [
  node [ id 0 label "x" ]
  node [ id 1 label "x" ]
  edge [ source 0 target 1 ]
]
)");
  Graph g = read_gml(is);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_NE(g.find_node("x"), kInvalidNode);
  EXPECT_NE(g.find_node("x#1"), kInvalidNode);
}

TEST(Gml, SkipsNestedBlocks) {
  std::istringstream is(R"(
graph [
  node [ id 0 label "a" graphics [ x 1 y 2 w 3 ] ]
  node [ id 1 label "b" ]
  edge [ source 0 target 1 ]
]
)");
  Graph g = read_gml(is);
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(Gml, MissingCoordinatesUseLatencyFloor) {
  std::istringstream is(R"(
graph [
  node [ id 0 label "a" ]
  node [ id 1 label "b" ]
  edge [ source 0 target 1 ]
]
)");
  Graph g = read_gml(is);
  EXPECT_DOUBLE_EQ(g.link(0).latency_ms, 0.1);
}

TEST(Gml, RejectsMalformedInputs) {
  {
    std::istringstream is("node [ id 0 label a ]");
    EXPECT_THROW(read_gml(is), FormatError);  // no graph keyword
  }
  {
    std::istringstream is("graph [ node [ id 0 label a ");
    EXPECT_THROW(read_gml(is), FormatError);  // unterminated block
  }
  {
    std::istringstream is(
        "graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 9 ] ]");
    EXPECT_THROW(read_gml(is), FormatError);  // unknown node id
  }
  {
    std::istringstream is("graph [ edge [ source 0 target 1 ] ]");
    EXPECT_THROW(read_gml(is), FormatError);  // no nodes
  }
}

TEST(Gml, LoadedGraphWorksWithTunnels) {
  std::istringstream is(kSmallGml);
  Graph g = read_gml(is);
  TunnelSet ts = build_tunnels(g);
  EXPECT_EQ(ts.num_pairs(), 6u);
  const auto& t = ts.tunnels(0, 2);
  ASSERT_FALSE(t.empty());
  EXPECT_GE(t.size(), 2u) << "triangle offers a direct and an indirect path";
}

}  // namespace
}  // namespace megate::topo
