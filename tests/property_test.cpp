// Property-based randomized testing of every TE solver (ISSUE satellite):
// ~100 seeded random scenarios, each solved by MegaTE and the three
// baselines, each solution validated by te::check_solution, and MegaTE's
// satisfied demand held to a sane fraction of the LP-all upper reference.
//
// On failure the harness *shrinks*: it retries progressively smaller
// variants of the failing scenario (fewer endpoints, then fewer sites)
// and reports the smallest one that still fails, together with the exact
// seed — so a red run is immediately reproducible with
//   Scenario{seed=..., sites=..., links=..., eps=..., load=...}.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "megate/te/baselines.h"
#include "megate/te/checker.h"
#include "megate/te/megate_solver.h"
#include "megate/util/rng.h"
#include "test_helpers.h"

namespace megate {
namespace {

/// One randomized scenario shape, fully determined by a seed.
struct CaseConfig {
  std::uint64_t seed = 0;
  std::uint32_t sites = 6;
  std::uint32_t links = 9;
  std::uint32_t eps_per_site = 2;
  double load = 0.2;

  std::string describe() const {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "Scenario{seed=%llu, sites=%u, links=%u, eps=%u, "
                  "load=%.3f}",
                  static_cast<unsigned long long>(seed), sites, links,
                  eps_per_site, load);
    return buf;
  }
};

CaseConfig random_case(std::uint64_t seed) {
  util::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  CaseConfig c;
  c.seed = seed;
  c.sites = static_cast<std::uint32_t>(rng.uniform_int(4, 8));
  c.links = c.sites +
            static_cast<std::uint32_t>(rng.uniform_int(0, c.sites));
  c.eps_per_site = static_cast<std::uint32_t>(rng.uniform_int(4, 8));
  c.load = 0.1 + 0.3 * rng.uniform();  // 0.1 .. 0.4
  return c;
}

/// MegaTE picks one tunnel per flow (unsplittable); the fractional LP can
/// always do at least as well. The ratio floor only makes sense in the
/// paper's regime of flows individually small against link capacity: a
/// heavy-tailed elephant bigger than the links on its path must be
/// rejected whole, and the LP (which may split it) can legitimately run
/// away. Scenarios whose largest flow exceeds the mean link capacity only
/// get the constraint checks; fine-grained ones (about two thirds of the
/// draws, worst observed ratio ~0.63) also get the floor.
constexpr double kMinLpFraction = 0.5;

bool fine_grained(const testing::Scenario& s) {
  double max_demand = 0.0;
  for (const auto& [pair, flows] : s.traffic.pairs()) {
    for (const auto& f : flows) max_demand = std::max(max_demand, f.demand_gbps);
  }
  double cap_sum = 0.0;
  for (const auto& l : s.graph.links()) cap_sum += l.capacity_gbps;
  const double mean_cap =
      s.graph.links().empty() ? 0.0
                              : cap_sum / static_cast<double>(s.graph.links().size());
  return max_demand <= mean_cap;
}

/// Runs one scenario through all four solvers. Returns std::nullopt when
/// every property holds, or a description of the first violation. Sets
/// `*ratio_checked` when the scenario was fine-grained enough for the
/// MegaTE-vs-LP floor to apply.
std::optional<std::string> run_case(const CaseConfig& c,
                                    bool* ratio_checked = nullptr) {
  auto s = testing::make_scenario(c.sites, c.links, c.eps_per_site, c.load,
                                  c.seed);
  const te::TeProblem problem = s->problem();

  te::MegaTeSolver megate_solver;
  te::LpAllSolver lp_solver;
  te::NcFlowSolver ncflow_solver;
  te::TealSolver teal_solver;
  te::Solver* const solvers[] = {&megate_solver, &lp_solver, &ncflow_solver,
                                 &teal_solver};

  double megate_satisfied = 0.0;
  double lp_satisfied = 0.0;
  for (te::Solver* solver : solvers) {
    const te::TeSolution sol = solver->solve(problem);
    if (!sol.solved) {
      return c.describe() + ": " + solver->name() +
             " refused a tiny instance";
    }
    te::CheckOptions copt;
    copt.capacity_tolerance = 1e-6;
    // MegaTE is endpoint-granular: demand per-flow assignments too.
    copt.require_flow_assignment = solver == &megate_solver;
    const te::CheckResult check = te::check_solution(problem, sol, copt);
    if (!check.ok) {
      return c.describe() + ": " + solver->name() +
             " violates constraints: " + check.violations.front();
    }
    if (sol.satisfied_gbps < -1e-9 ||
        sol.satisfied_gbps > sol.total_demand_gbps + 1e-6) {
      return c.describe() + ": " + solver->name() +
             " satisfied demand out of range";
    }
    if (solver == &megate_solver) megate_satisfied = sol.satisfied_gbps;
    if (solver == &lp_solver) lp_satisfied = sol.satisfied_gbps;
  }

  if (!fine_grained(*s)) return std::nullopt;
  if (ratio_checked != nullptr) *ratio_checked = true;
  if (megate_satisfied < kMinLpFraction * lp_satisfied - 1e-9) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  ": MegaTE %.3f < %.2f x LP-all %.3f Gbps",
                  megate_satisfied, kMinLpFraction, lp_satisfied);
    return c.describe() + buf;
  }
  return std::nullopt;
}

/// Shrinks a failing case: smaller endpoint counts first (cheapest to
/// reason about), then fewer sites. Returns the smallest still-failing
/// config and its error.
std::pair<CaseConfig, std::string> shrink(CaseConfig c, std::string error) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    std::vector<CaseConfig> candidates;
    if (c.eps_per_site > 1) {
      CaseConfig d = c;
      d.eps_per_site -= 1;
      candidates.push_back(d);
    }
    if (c.sites > 3) {
      CaseConfig d = c;
      d.sites -= 1;
      d.links = std::min(d.links, d.sites * 2);
      candidates.push_back(d);
    }
    if (c.links > c.sites) {
      CaseConfig d = c;
      d.links -= 1;
      candidates.push_back(d);
    }
    for (const CaseConfig& d : candidates) {
      if (auto err = run_case(d)) {
        c = d;
        error = *err;
        shrunk = true;
        break;
      }
    }
  }
  return {c, error};
}

TEST(PropertyTest, AllSolversSatisfyConstraintsAcrossRandomScenarios) {
  constexpr std::uint64_t kSeeds = 100;
  std::size_t failures = 0;
  std::size_t ratio_checked_count = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const CaseConfig c = random_case(seed);
    bool ratio_checked = false;
    auto error = run_case(c, &ratio_checked);
    if (ratio_checked) ++ratio_checked_count;
    if (!error) continue;
    const auto [smallest, message] = shrink(c, *error);
    ADD_FAILURE() << "seed " << seed << " failed; shrunk to "
                  << smallest.describe() << "\n  " << message;
    if (++failures >= 3) break;  // enough to debug; don't spam
  }
  // The elephant-flow carve-out must not make the LP floor vacuous.
  EXPECT_GE(ratio_checked_count, kSeeds / 4)
      << "too few fine-grained scenarios exercised the MegaTE-vs-LP floor";
}

// A coarse regression anchor so the property floor itself is exercised on
// a known instance (not only vacuously true when solvers agree).
TEST(PropertyTest, MegaTeTracksLpOnReferenceScenario) {
  const CaseConfig c{.seed = 42, .sites = 8, .links = 12, .eps_per_site = 3,
                     .load = 0.3};
  bool ratio_checked = false;
  EXPECT_EQ(run_case(c, &ratio_checked), std::nullopt);
  EXPECT_TRUE(ratio_checked)
      << "reference scenario must be fine-grained so the floor is live";
}

}  // namespace
}  // namespace megate
