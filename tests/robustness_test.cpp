// Robustness suite: adversarial and malformed inputs that must be
// rejected cleanly (no crash, no UB) — deterministic random-buffer fuzz
// of the packet parsers and router, truncation/bit-flip sweeps of valid
// packets, degenerate LP/SSP instances, and checker tolerance edges.

#include <gtest/gtest.h>

#include <cmath>

#include "megate/dataplane/host_stack.h"
#include "megate/dataplane/router.h"
#include "megate/lp/simplex.h"
#include "megate/ssp/fast_ssp.h"
#include "megate/te/checker.h"
#include "megate/te/megate_solver.h"
#include "megate/util/rng.h"
#include "test_helpers.h"

namespace megate {
namespace {

using dataplane::Buffer;
using dataplane::ConstBytes;

Buffer valid_sr_packet() {
  using namespace dataplane;
  HostStack hs;
  hs.on_sys_enter_execve(1, 99);
  FiveTuple t;
  t.src_ip = make_overlay_ip(1, 2);
  t.dst_ip = make_overlay_ip(3, 4);
  t.proto = kProtoUdp;
  t.src_port = 1111;
  t.dst_port = 2222;
  hs.on_conntrack_event(t, 1);
  hs.install_route(99, 3, {5, 3});
  Buffer inner;
  EthernetHeader eth;
  eth.serialize(inner);
  Ipv4Header ip;
  ip.protocol = kProtoUdp;
  ip.src_ip = t.src_ip;
  ip.dst_ip = t.dst_ip;
  ip.total_length = kIpv4HeaderSize + kUdpHeaderSize + 8;
  ip.serialize(inner);
  UdpHeader udp;
  udp.src_port = t.src_port;
  udp.dst_port = t.dst_port;
  udp.length = kUdpHeaderSize + 8;
  udp.serialize(inner);
  inner.insert(inner.end(), 8, 0x42);
  auto v = hs.tc_egress(inner, 0x01020304);
  EXPECT_EQ(v.action, TcVerdict::Action::kEncapsulated);
  return v.packet;
}

// --- random-buffer fuzz --------------------------------------------------

TEST(Fuzz, RandomBuffersNeverCrashParsers) {
  util::Rng rng(0xF0CC);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::size_t len = rng.uniform_int(0, 256);
    Buffer buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
    // Every parser must either produce a value or reject; never crash.
    (void)dataplane::EthernetHeader::parse(buf);
    (void)dataplane::Ipv4Header::parse(buf);
    (void)dataplane::UdpHeader::parse(buf);
    (void)dataplane::VxlanHeader::parse(buf);
    (void)dataplane::SrHeader::parse(buf);
  }
}

TEST(Fuzz, RandomBuffersThroughRouterAndHost) {
  util::Rng rng(0xF0CD);
  dataplane::Router router(3, 4);
  dataplane::HostStack hs;
  std::size_t drops = 0, total = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = rng.uniform_int(0, 192);
    Buffer buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
    auto d = router.forward(buf);
    drops += d.kind == dataplane::ForwardDecision::Kind::kDrop;
    ++total;
    (void)hs.tc_egress(buf, 1);
    (void)hs.vtep_ingress(buf);
  }
  // Random bytes essentially never form a valid IPv4 checksum: virtually
  // everything must be dropped.
  EXPECT_GT(drops, total * 95 / 100);
}

TEST(Fuzz, TruncationSweepOnValidPacket) {
  const Buffer pkt = valid_sr_packet();
  dataplane::Router router(5, 4);
  dataplane::HostStack hs;
  for (std::size_t len = 0; len < pkt.size(); ++len) {
    ConstBytes prefix(pkt.data(), len);
    (void)router.forward(prefix);   // must not crash at any cut point
    (void)hs.vtep_ingress(prefix);
  }
  // The untruncated packet still parses.
  EXPECT_NE(router.forward(pkt).kind,
            dataplane::ForwardDecision::Kind::kDrop);
}

TEST(Fuzz, ByteFlipSweepOnValidPacket) {
  const Buffer pkt = valid_sr_packet();
  dataplane::Router router(5, 4);
  for (std::size_t pos = 0; pos < pkt.size(); ++pos) {
    Buffer mutated = pkt;
    mutated[pos] ^= 0xFF;
    (void)router.forward(mutated);  // any verdict is fine; no crash/UB
  }
}

TEST(Fuzz, SrHeaderHopCountBoundary) {
  // kSrMaxHops accepted, kSrMaxHops+1 rejected.
  dataplane::SrHeader h;
  h.offset = 0;
  h.hops.assign(dataplane::kSrMaxHops, 7);
  Buffer b;
  EXPECT_TRUE(h.serialize(b));
  EXPECT_TRUE(dataplane::SrHeader::parse(b).has_value());
  Buffer oversized;
  oversized.push_back(dataplane::kSrMaxHops + 1);
  oversized.push_back(0);
  oversized.push_back(0);
  oversized.push_back(0);
  for (std::size_t i = 0; i <= dataplane::kSrMaxHops; ++i) {
    dataplane::put_u32(oversized, 7);
  }
  EXPECT_FALSE(dataplane::SrHeader::parse(oversized).has_value());
}

// --- degenerate optimization inputs ------------------------------------

TEST(DegenerateLp, ManyTiedColumns) {
  // 50 identical columns on one row: any split is optimal; the simplex
  // must terminate (Bland's rule) and fill the row exactly.
  lp::Model m;
  const auto row = m.add_constraint(10.0);
  for (int i = 0; i < 50; ++i) {
    const auto x = m.add_variable(1.0);
    m.add_coefficient(row, x, 1.0);
  }
  auto sol = lp::SimplexSolver().solve(m);
  ASSERT_EQ(sol.status, lp::Status::kOptimal);
  EXPECT_NEAR(sol.objective, 10.0, 1e-9);
}

TEST(DegenerateLp, ZeroObjectiveEverywhere) {
  lp::Model m;
  const auto row = m.add_constraint(5.0);
  const auto x = m.add_variable(0.0);
  m.add_coefficient(row, x, 1.0);
  auto sol = lp::SimplexSolver().solve(m);
  ASSERT_EQ(sol.status, lp::Status::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-12);
}

TEST(DegenerateSsp, AllEqualItems) {
  std::vector<double> v(100, 1.0);
  auto sel = ssp::fast_ssp(v, 37.5);
  EXPECT_EQ(sel.indices.size(), 37u);
  EXPECT_NEAR(sel.total, 37.0, 1e-9);
}

TEST(DegenerateSsp, CapacityBelowSmallestItem) {
  std::vector<double> v{2.0, 3.0, 5.0};
  auto sel = ssp::fast_ssp(v, 1.0);
  EXPECT_TRUE(sel.indices.empty());
  EXPECT_DOUBLE_EQ(sel.total, 0.0);
}

TEST(DegenerateSsp, SingleItemExactFit) {
  std::vector<double> v{7.0};
  auto sel = ssp::fast_ssp(v, 7.0);
  ASSERT_EQ(sel.indices.size(), 1u);
  EXPECT_DOUBLE_EQ(sel.total, 7.0);
}

TEST(DegenerateSsp, HugeValueSpread) {
  // 1e-6 .. 1e3 in one instance: clustering must bridge 9 decades.
  std::vector<double> v;
  for (int e = -6; e <= 3; ++e) v.push_back(std::pow(10.0, e));
  auto sel = ssp::fast_ssp(v, 1500.0);
  EXPECT_LE(sel.total, 1500.0);
  EXPECT_GT(sel.total, 1100.0);  // the 1e3 item must be taken
}

// --- solver edge conditions -------------------------------------------

TEST(SolverEdge, EmptyTrafficMatrix) {
  auto s = megate::testing::make_scenario(5, 8, 5);
  tm::TrafficMatrix empty;
  te::TeProblem p;
  p.graph = &s->graph;
  p.tunnels = &s->tunnels;
  p.traffic = &empty;
  te::MegaTeSolver solver;
  te::TeSolution sol = solver.solve(p, {}).solution;
  EXPECT_EQ(sol.satisfied_gbps, 0.0);
  EXPECT_TRUE(te::check_solution(p, sol).ok);
}

TEST(SolverEdge, AllLinksDown) {
  auto s = megate::testing::make_scenario(5, 8, 10, 0.2);
  for (topo::EdgeId e = 0; e < s->graph.num_links(); ++e) {
    s->graph.set_link_state(e, false);
  }
  te::MegaTeSolver solver;
  te::TeSolution sol = solver.solve(s->problem(), {}).solution;
  EXPECT_EQ(sol.satisfied_gbps, 0.0);
  auto res = te::check_solution(s->problem(), sol);
  EXPECT_TRUE(res.ok);
  s->graph.restore_all_links();
}

TEST(SolverEdge, SingleFlowLargerThanAnyLink) {
  auto s = megate::testing::make_scenario(5, 8, 2, 0.01);
  // Add one impossible flow.
  tm::EndpointDemand monster;
  monster.src = tm::make_endpoint(0, 0);
  monster.dst = tm::make_endpoint(1, 0);
  monster.demand_gbps = 1e9;
  s->traffic.add(monster);
  te::MegaTeSolver solver;
  te::TeSolution sol = solver.solve(s->problem(), {}).solution;
  auto res = te::check_solution(s->problem(), sol);
  EXPECT_TRUE(res.ok) << "monster flow must be rejected, not squeezed in";
  EXPECT_LT(sol.satisfied_gbps, 1e9);
}

TEST(SolverEdge, CheckerToleranceBoundary) {
  auto s = megate::testing::make_scenario(4, 6, 5);
  const auto& [pair, flows] = *s->traffic.pairs().begin();
  const auto& ts = s->tunnels.tunnels(pair.src, pair.dst);
  ASSERT_FALSE(ts.empty());
  // Allocation exactly at capacity: fine. A hair above tolerance: flagged.
  double min_cap = 1e18;
  for (topo::EdgeId e : ts[0].links) {
    min_cap = std::min(min_cap, s->graph.link(e).capacity_gbps);
  }
  te::TeSolution sol;
  te::PairAllocation alloc;
  alloc.tunnel_alloc.assign(ts.size(), 0.0);
  alloc.tunnel_alloc[0] = min_cap;
  sol.pairs[pair] = alloc;
  EXPECT_TRUE(te::check_solution(s->problem(), sol).ok);
  sol.pairs[pair].tunnel_alloc[0] = min_cap * 1.001;
  EXPECT_FALSE(te::check_solution(s->problem(), sol).ok);
}

}  // namespace
}  // namespace megate
