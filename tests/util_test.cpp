// Unit tests for megate::util — RNG determinism and distribution sanity,
// descriptive statistics, table rendering, and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "megate/util/rng.h"
#include "megate/util/stats.h"
#include "megate/util/stopwatch.h"
#include "megate/util/table.h"
#include "megate/util/thread_pool.h"

namespace megate::util {
namespace {

// --- Rng ----------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42u);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Rng, WeibullMeanMatchesTheory) {
  Rng rng(13);
  const double shape = 0.8, scale = 100.0;
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.weibull(shape, scale));
  const double expected = scale * std::tgamma(1.0 + 1.0 / shape);
  EXPECT_NEAR(acc.mean() / expected, 1.0, 0.03);
}

TEST(Rng, WeibullNonNegative) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.weibull(0.5, 10.0), 0.0);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.lognormal(1.0, 0.8));
  EXPECT_NEAR(percentile(xs, 50) / std::exp(1.0), 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(rng.exponential(4.0));
  EXPECT_NEAR(acc.mean(), 0.25, 0.01);
}

TEST(Rng, ParetoLowerBound) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng parent(31);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkDeterministic) {
  Rng p1(5), p2(5);
  Rng a = p1.fork(9);
  Rng b = p2.fork(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

// --- stats -----------------------------------------------------------------

TEST(Stats, SummarizeBasics) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, SummarizeEmpty) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const double xs[] = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_NEAR(percentile(xs, 25), 17.5, 1e-12);
}

TEST(Stats, PercentileUnsortedInput) {
  const double xs[] = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, PercentileSingleElement) {
  const double xs[] = {42.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 37.5), 42.0);
}

TEST(Stats, EmpiricalCdfStepsAreMonotone) {
  const double xs[] = {3.0, 1.0, 2.0, 2.0, 5.0};
  auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 4u);  // duplicates collapsed
  double prev_x = -1e9, prev_p = 0.0;
  for (auto [x, p] : cdf) {
    EXPECT_GT(x, prev_x);
    EXPECT_GT(p, prev_p);
    prev_x = x;
    prev_p = p;
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  EXPECT_DOUBLE_EQ(cdf[1].second, 0.6);  // P[X <= 2] = 3/5
}

TEST(Stats, AccumulatorMatchesBatch) {
  Rng rng(37);
  Accumulator acc;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    xs.push_back(x);
    acc.add(x);
  }
  Summary s = summarize(xs);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-9);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-9);
  EXPECT_EQ(acc.min(), s.min);
  EXPECT_EQ(acc.max(), s.max);
}

// --- table ---------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"bbbb", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("bbbb"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscapesSpecials) {
  Table t;
  t.header({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t;
  t.header({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  SUCCEED();  // no crash; padding handled
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
  EXPECT_EQ(Table::with_commas(1234567), "1,234,567");
  EXPECT_EQ(Table::with_commas(999), "999");
  EXPECT_EQ(Table::with_commas(0), "0");
}

// --- thread pool ------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitReturnsUsableFuture) {
  ThreadPool pool(2);
  std::atomic<int> x{0};
  auto f = pool.submit([&] { x = 42; });
  f.wait();
  EXPECT_EQ(x.load(), 42);
}

TEST(ThreadPool, SizeMatchesRequested) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
  EXPECT_GE(sw.elapsed_ms(), sw.elapsed_seconds());
}

}  // namespace
}  // namespace megate::util
