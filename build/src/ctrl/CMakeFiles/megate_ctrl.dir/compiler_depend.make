# Empty compiler generated dependencies file for megate_ctrl.
# This may be replaced when dependencies are built.
