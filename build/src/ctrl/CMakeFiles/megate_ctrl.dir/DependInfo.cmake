
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctrl/agent.cpp" "src/ctrl/CMakeFiles/megate_ctrl.dir/agent.cpp.o" "gcc" "src/ctrl/CMakeFiles/megate_ctrl.dir/agent.cpp.o.d"
  "/root/repo/src/ctrl/connection_manager.cpp" "src/ctrl/CMakeFiles/megate_ctrl.dir/connection_manager.cpp.o" "gcc" "src/ctrl/CMakeFiles/megate_ctrl.dir/connection_manager.cpp.o.d"
  "/root/repo/src/ctrl/controller.cpp" "src/ctrl/CMakeFiles/megate_ctrl.dir/controller.cpp.o" "gcc" "src/ctrl/CMakeFiles/megate_ctrl.dir/controller.cpp.o.d"
  "/root/repo/src/ctrl/hybrid_sync.cpp" "src/ctrl/CMakeFiles/megate_ctrl.dir/hybrid_sync.cpp.o" "gcc" "src/ctrl/CMakeFiles/megate_ctrl.dir/hybrid_sync.cpp.o.d"
  "/root/repo/src/ctrl/kvstore.cpp" "src/ctrl/CMakeFiles/megate_ctrl.dir/kvstore.cpp.o" "gcc" "src/ctrl/CMakeFiles/megate_ctrl.dir/kvstore.cpp.o.d"
  "/root/repo/src/ctrl/sync_model.cpp" "src/ctrl/CMakeFiles/megate_ctrl.dir/sync_model.cpp.o" "gcc" "src/ctrl/CMakeFiles/megate_ctrl.dir/sync_model.cpp.o.d"
  "/root/repo/src/ctrl/telemetry.cpp" "src/ctrl/CMakeFiles/megate_ctrl.dir/telemetry.cpp.o" "gcc" "src/ctrl/CMakeFiles/megate_ctrl.dir/telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/megate_util.dir/DependInfo.cmake"
  "/root/repo/build/src/te/CMakeFiles/megate_te.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/megate_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/megate_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/megate_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/megate_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/ssp/CMakeFiles/megate_ssp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
