file(REMOVE_RECURSE
  "libmegate_ctrl.a"
)
