# Empty dependencies file for megate_ctrl.
# This may be replaced when dependencies are built.
