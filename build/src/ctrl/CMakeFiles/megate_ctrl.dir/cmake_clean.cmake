file(REMOVE_RECURSE
  "CMakeFiles/megate_ctrl.dir/agent.cpp.o"
  "CMakeFiles/megate_ctrl.dir/agent.cpp.o.d"
  "CMakeFiles/megate_ctrl.dir/connection_manager.cpp.o"
  "CMakeFiles/megate_ctrl.dir/connection_manager.cpp.o.d"
  "CMakeFiles/megate_ctrl.dir/controller.cpp.o"
  "CMakeFiles/megate_ctrl.dir/controller.cpp.o.d"
  "CMakeFiles/megate_ctrl.dir/hybrid_sync.cpp.o"
  "CMakeFiles/megate_ctrl.dir/hybrid_sync.cpp.o.d"
  "CMakeFiles/megate_ctrl.dir/kvstore.cpp.o"
  "CMakeFiles/megate_ctrl.dir/kvstore.cpp.o.d"
  "CMakeFiles/megate_ctrl.dir/sync_model.cpp.o"
  "CMakeFiles/megate_ctrl.dir/sync_model.cpp.o.d"
  "CMakeFiles/megate_ctrl.dir/telemetry.cpp.o"
  "CMakeFiles/megate_ctrl.dir/telemetry.cpp.o.d"
  "libmegate_ctrl.a"
  "libmegate_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megate_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
