# Empty compiler generated dependencies file for megate_dataplane.
# This may be replaced when dependencies are built.
