file(REMOVE_RECURSE
  "libmegate_dataplane.a"
)
