file(REMOVE_RECURSE
  "CMakeFiles/megate_dataplane.dir/host_stack.cpp.o"
  "CMakeFiles/megate_dataplane.dir/host_stack.cpp.o.d"
  "CMakeFiles/megate_dataplane.dir/packet.cpp.o"
  "CMakeFiles/megate_dataplane.dir/packet.cpp.o.d"
  "CMakeFiles/megate_dataplane.dir/router.cpp.o"
  "CMakeFiles/megate_dataplane.dir/router.cpp.o.d"
  "CMakeFiles/megate_dataplane.dir/sr_header.cpp.o"
  "CMakeFiles/megate_dataplane.dir/sr_header.cpp.o.d"
  "CMakeFiles/megate_dataplane.dir/vxlan.cpp.o"
  "CMakeFiles/megate_dataplane.dir/vxlan.cpp.o.d"
  "libmegate_dataplane.a"
  "libmegate_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megate_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
