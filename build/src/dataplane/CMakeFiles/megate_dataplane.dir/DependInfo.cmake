
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/host_stack.cpp" "src/dataplane/CMakeFiles/megate_dataplane.dir/host_stack.cpp.o" "gcc" "src/dataplane/CMakeFiles/megate_dataplane.dir/host_stack.cpp.o.d"
  "/root/repo/src/dataplane/packet.cpp" "src/dataplane/CMakeFiles/megate_dataplane.dir/packet.cpp.o" "gcc" "src/dataplane/CMakeFiles/megate_dataplane.dir/packet.cpp.o.d"
  "/root/repo/src/dataplane/router.cpp" "src/dataplane/CMakeFiles/megate_dataplane.dir/router.cpp.o" "gcc" "src/dataplane/CMakeFiles/megate_dataplane.dir/router.cpp.o.d"
  "/root/repo/src/dataplane/sr_header.cpp" "src/dataplane/CMakeFiles/megate_dataplane.dir/sr_header.cpp.o" "gcc" "src/dataplane/CMakeFiles/megate_dataplane.dir/sr_header.cpp.o.d"
  "/root/repo/src/dataplane/vxlan.cpp" "src/dataplane/CMakeFiles/megate_dataplane.dir/vxlan.cpp.o" "gcc" "src/dataplane/CMakeFiles/megate_dataplane.dir/vxlan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/megate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
