file(REMOVE_RECURSE
  "libmegate_topo.a"
)
