
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/clustering.cpp" "src/topo/CMakeFiles/megate_topo.dir/clustering.cpp.o" "gcc" "src/topo/CMakeFiles/megate_topo.dir/clustering.cpp.o.d"
  "/root/repo/src/topo/failures.cpp" "src/topo/CMakeFiles/megate_topo.dir/failures.cpp.o" "gcc" "src/topo/CMakeFiles/megate_topo.dir/failures.cpp.o.d"
  "/root/repo/src/topo/format.cpp" "src/topo/CMakeFiles/megate_topo.dir/format.cpp.o" "gcc" "src/topo/CMakeFiles/megate_topo.dir/format.cpp.o.d"
  "/root/repo/src/topo/generators.cpp" "src/topo/CMakeFiles/megate_topo.dir/generators.cpp.o" "gcc" "src/topo/CMakeFiles/megate_topo.dir/generators.cpp.o.d"
  "/root/repo/src/topo/gml.cpp" "src/topo/CMakeFiles/megate_topo.dir/gml.cpp.o" "gcc" "src/topo/CMakeFiles/megate_topo.dir/gml.cpp.o.d"
  "/root/repo/src/topo/graph.cpp" "src/topo/CMakeFiles/megate_topo.dir/graph.cpp.o" "gcc" "src/topo/CMakeFiles/megate_topo.dir/graph.cpp.o.d"
  "/root/repo/src/topo/shortest_path.cpp" "src/topo/CMakeFiles/megate_topo.dir/shortest_path.cpp.o" "gcc" "src/topo/CMakeFiles/megate_topo.dir/shortest_path.cpp.o.d"
  "/root/repo/src/topo/tunnels.cpp" "src/topo/CMakeFiles/megate_topo.dir/tunnels.cpp.o" "gcc" "src/topo/CMakeFiles/megate_topo.dir/tunnels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/megate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
