# Empty compiler generated dependencies file for megate_topo.
# This may be replaced when dependencies are built.
