file(REMOVE_RECURSE
  "CMakeFiles/megate_topo.dir/clustering.cpp.o"
  "CMakeFiles/megate_topo.dir/clustering.cpp.o.d"
  "CMakeFiles/megate_topo.dir/failures.cpp.o"
  "CMakeFiles/megate_topo.dir/failures.cpp.o.d"
  "CMakeFiles/megate_topo.dir/format.cpp.o"
  "CMakeFiles/megate_topo.dir/format.cpp.o.d"
  "CMakeFiles/megate_topo.dir/generators.cpp.o"
  "CMakeFiles/megate_topo.dir/generators.cpp.o.d"
  "CMakeFiles/megate_topo.dir/gml.cpp.o"
  "CMakeFiles/megate_topo.dir/gml.cpp.o.d"
  "CMakeFiles/megate_topo.dir/graph.cpp.o"
  "CMakeFiles/megate_topo.dir/graph.cpp.o.d"
  "CMakeFiles/megate_topo.dir/shortest_path.cpp.o"
  "CMakeFiles/megate_topo.dir/shortest_path.cpp.o.d"
  "CMakeFiles/megate_topo.dir/tunnels.cpp.o"
  "CMakeFiles/megate_topo.dir/tunnels.cpp.o.d"
  "libmegate_topo.a"
  "libmegate_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megate_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
