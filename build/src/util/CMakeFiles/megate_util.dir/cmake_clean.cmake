file(REMOVE_RECURSE
  "CMakeFiles/megate_util.dir/log.cpp.o"
  "CMakeFiles/megate_util.dir/log.cpp.o.d"
  "CMakeFiles/megate_util.dir/rng.cpp.o"
  "CMakeFiles/megate_util.dir/rng.cpp.o.d"
  "CMakeFiles/megate_util.dir/stats.cpp.o"
  "CMakeFiles/megate_util.dir/stats.cpp.o.d"
  "CMakeFiles/megate_util.dir/table.cpp.o"
  "CMakeFiles/megate_util.dir/table.cpp.o.d"
  "CMakeFiles/megate_util.dir/thread_pool.cpp.o"
  "CMakeFiles/megate_util.dir/thread_pool.cpp.o.d"
  "libmegate_util.a"
  "libmegate_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megate_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
