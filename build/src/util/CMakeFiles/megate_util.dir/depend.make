# Empty dependencies file for megate_util.
# This may be replaced when dependencies are built.
