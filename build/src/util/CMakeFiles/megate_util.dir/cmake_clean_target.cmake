file(REMOVE_RECURSE
  "libmegate_util.a"
)
