
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssp/fast_ssp.cpp" "src/ssp/CMakeFiles/megate_ssp.dir/fast_ssp.cpp.o" "gcc" "src/ssp/CMakeFiles/megate_ssp.dir/fast_ssp.cpp.o.d"
  "/root/repo/src/ssp/subset_sum.cpp" "src/ssp/CMakeFiles/megate_ssp.dir/subset_sum.cpp.o" "gcc" "src/ssp/CMakeFiles/megate_ssp.dir/subset_sum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/megate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
