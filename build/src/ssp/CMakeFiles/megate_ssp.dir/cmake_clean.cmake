file(REMOVE_RECURSE
  "CMakeFiles/megate_ssp.dir/fast_ssp.cpp.o"
  "CMakeFiles/megate_ssp.dir/fast_ssp.cpp.o.d"
  "CMakeFiles/megate_ssp.dir/subset_sum.cpp.o"
  "CMakeFiles/megate_ssp.dir/subset_sum.cpp.o.d"
  "libmegate_ssp.a"
  "libmegate_ssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megate_ssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
