# Empty compiler generated dependencies file for megate_ssp.
# This may be replaced when dependencies are built.
