file(REMOVE_RECURSE
  "libmegate_ssp.a"
)
