# Empty dependencies file for megate_ssp.
# This may be replaced when dependencies are built.
