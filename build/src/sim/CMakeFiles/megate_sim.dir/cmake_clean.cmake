file(REMOVE_RECURSE
  "CMakeFiles/megate_sim.dir/failure_sim.cpp.o"
  "CMakeFiles/megate_sim.dir/failure_sim.cpp.o.d"
  "CMakeFiles/megate_sim.dir/flow_sim.cpp.o"
  "CMakeFiles/megate_sim.dir/flow_sim.cpp.o.d"
  "CMakeFiles/megate_sim.dir/period_sim.cpp.o"
  "CMakeFiles/megate_sim.dir/period_sim.cpp.o.d"
  "CMakeFiles/megate_sim.dir/production.cpp.o"
  "CMakeFiles/megate_sim.dir/production.cpp.o.d"
  "libmegate_sim.a"
  "libmegate_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megate_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
