# Empty compiler generated dependencies file for megate_sim.
# This may be replaced when dependencies are built.
