file(REMOVE_RECURSE
  "libmegate_sim.a"
)
