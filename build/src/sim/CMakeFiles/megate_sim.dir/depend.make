# Empty dependencies file for megate_sim.
# This may be replaced when dependencies are built.
