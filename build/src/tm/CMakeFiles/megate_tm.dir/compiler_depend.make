# Empty compiler generated dependencies file for megate_tm.
# This may be replaced when dependencies are built.
