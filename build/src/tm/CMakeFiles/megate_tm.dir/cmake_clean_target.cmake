file(REMOVE_RECURSE
  "libmegate_tm.a"
)
