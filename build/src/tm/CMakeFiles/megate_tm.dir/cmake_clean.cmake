file(REMOVE_RECURSE
  "CMakeFiles/megate_tm.dir/endpoints.cpp.o"
  "CMakeFiles/megate_tm.dir/endpoints.cpp.o.d"
  "CMakeFiles/megate_tm.dir/prediction.cpp.o"
  "CMakeFiles/megate_tm.dir/prediction.cpp.o.d"
  "CMakeFiles/megate_tm.dir/traffic.cpp.o"
  "CMakeFiles/megate_tm.dir/traffic.cpp.o.d"
  "libmegate_tm.a"
  "libmegate_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megate_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
