
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tm/endpoints.cpp" "src/tm/CMakeFiles/megate_tm.dir/endpoints.cpp.o" "gcc" "src/tm/CMakeFiles/megate_tm.dir/endpoints.cpp.o.d"
  "/root/repo/src/tm/prediction.cpp" "src/tm/CMakeFiles/megate_tm.dir/prediction.cpp.o" "gcc" "src/tm/CMakeFiles/megate_tm.dir/prediction.cpp.o.d"
  "/root/repo/src/tm/traffic.cpp" "src/tm/CMakeFiles/megate_tm.dir/traffic.cpp.o" "gcc" "src/tm/CMakeFiles/megate_tm.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/megate_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/megate_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
