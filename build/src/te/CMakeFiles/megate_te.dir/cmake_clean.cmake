file(REMOVE_RECURSE
  "CMakeFiles/megate_te.dir/checker.cpp.o"
  "CMakeFiles/megate_te.dir/checker.cpp.o.d"
  "CMakeFiles/megate_te.dir/lp_all.cpp.o"
  "CMakeFiles/megate_te.dir/lp_all.cpp.o.d"
  "CMakeFiles/megate_te.dir/megate_solver.cpp.o"
  "CMakeFiles/megate_te.dir/megate_solver.cpp.o.d"
  "CMakeFiles/megate_te.dir/ncflow.cpp.o"
  "CMakeFiles/megate_te.dir/ncflow.cpp.o.d"
  "CMakeFiles/megate_te.dir/site_lp.cpp.o"
  "CMakeFiles/megate_te.dir/site_lp.cpp.o.d"
  "CMakeFiles/megate_te.dir/teal.cpp.o"
  "CMakeFiles/megate_te.dir/teal.cpp.o.d"
  "CMakeFiles/megate_te.dir/types.cpp.o"
  "CMakeFiles/megate_te.dir/types.cpp.o.d"
  "libmegate_te.a"
  "libmegate_te.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megate_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
