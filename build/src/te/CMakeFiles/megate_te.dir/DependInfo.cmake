
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/te/checker.cpp" "src/te/CMakeFiles/megate_te.dir/checker.cpp.o" "gcc" "src/te/CMakeFiles/megate_te.dir/checker.cpp.o.d"
  "/root/repo/src/te/lp_all.cpp" "src/te/CMakeFiles/megate_te.dir/lp_all.cpp.o" "gcc" "src/te/CMakeFiles/megate_te.dir/lp_all.cpp.o.d"
  "/root/repo/src/te/megate_solver.cpp" "src/te/CMakeFiles/megate_te.dir/megate_solver.cpp.o" "gcc" "src/te/CMakeFiles/megate_te.dir/megate_solver.cpp.o.d"
  "/root/repo/src/te/ncflow.cpp" "src/te/CMakeFiles/megate_te.dir/ncflow.cpp.o" "gcc" "src/te/CMakeFiles/megate_te.dir/ncflow.cpp.o.d"
  "/root/repo/src/te/site_lp.cpp" "src/te/CMakeFiles/megate_te.dir/site_lp.cpp.o" "gcc" "src/te/CMakeFiles/megate_te.dir/site_lp.cpp.o.d"
  "/root/repo/src/te/teal.cpp" "src/te/CMakeFiles/megate_te.dir/teal.cpp.o" "gcc" "src/te/CMakeFiles/megate_te.dir/teal.cpp.o.d"
  "/root/repo/src/te/types.cpp" "src/te/CMakeFiles/megate_te.dir/types.cpp.o" "gcc" "src/te/CMakeFiles/megate_te.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/megate_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/megate_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/megate_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/megate_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/ssp/CMakeFiles/megate_ssp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
