file(REMOVE_RECURSE
  "libmegate_te.a"
)
