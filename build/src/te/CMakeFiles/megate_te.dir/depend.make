# Empty dependencies file for megate_te.
# This may be replaced when dependencies are built.
