file(REMOVE_RECURSE
  "libmegate_lp.a"
)
