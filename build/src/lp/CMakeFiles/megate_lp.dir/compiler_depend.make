# Empty compiler generated dependencies file for megate_lp.
# This may be replaced when dependencies are built.
