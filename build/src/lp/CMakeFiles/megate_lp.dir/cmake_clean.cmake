file(REMOVE_RECURSE
  "CMakeFiles/megate_lp.dir/model.cpp.o"
  "CMakeFiles/megate_lp.dir/model.cpp.o.d"
  "CMakeFiles/megate_lp.dir/packing.cpp.o"
  "CMakeFiles/megate_lp.dir/packing.cpp.o.d"
  "CMakeFiles/megate_lp.dir/simplex.cpp.o"
  "CMakeFiles/megate_lp.dir/simplex.cpp.o.d"
  "libmegate_lp.a"
  "libmegate_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megate_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
