
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/megate_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/ctrl_test.cpp" "tests/CMakeFiles/megate_tests.dir/ctrl_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/ctrl_test.cpp.o.d"
  "/root/repo/tests/dataplane_test.cpp" "tests/CMakeFiles/megate_tests.dir/dataplane_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/dataplane_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/megate_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/gml_test.cpp" "tests/CMakeFiles/megate_tests.dir/gml_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/gml_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/megate_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/lp_test.cpp" "tests/CMakeFiles/megate_tests.dir/lp_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/lp_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/megate_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/megate_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/ssp_test.cpp" "tests/CMakeFiles/megate_tests.dir/ssp_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/ssp_test.cpp.o.d"
  "/root/repo/tests/te_test.cpp" "tests/CMakeFiles/megate_tests.dir/te_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/te_test.cpp.o.d"
  "/root/repo/tests/telemetry_test.cpp" "tests/CMakeFiles/megate_tests.dir/telemetry_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/telemetry_test.cpp.o.d"
  "/root/repo/tests/tm_test.cpp" "tests/CMakeFiles/megate_tests.dir/tm_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/tm_test.cpp.o.d"
  "/root/repo/tests/topo_test.cpp" "tests/CMakeFiles/megate_tests.dir/topo_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/topo_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/megate_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/megate_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/megate_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/megate_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/megate_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/megate_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/ssp/CMakeFiles/megate_ssp.dir/DependInfo.cmake"
  "/root/repo/build/src/te/CMakeFiles/megate_te.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/megate_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/megate_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/megate_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
