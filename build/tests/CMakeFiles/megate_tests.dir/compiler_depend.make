# Empty compiler generated dependencies file for megate_tests.
# This may be replaced when dependencies are built.
