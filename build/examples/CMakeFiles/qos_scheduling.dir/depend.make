# Empty dependencies file for qos_scheduling.
# This may be replaced when dependencies are built.
