file(REMOVE_RECURSE
  "CMakeFiles/qos_scheduling.dir/qos_scheduling.cpp.o"
  "CMakeFiles/qos_scheduling.dir/qos_scheduling.cpp.o.d"
  "qos_scheduling"
  "qos_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
