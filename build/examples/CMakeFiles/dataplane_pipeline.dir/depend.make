# Empty dependencies file for dataplane_pipeline.
# This may be replaced when dependencies are built.
