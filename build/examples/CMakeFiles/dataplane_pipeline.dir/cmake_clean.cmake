file(REMOVE_RECURSE
  "CMakeFiles/dataplane_pipeline.dir/dataplane_pipeline.cpp.o"
  "CMakeFiles/dataplane_pipeline.dir/dataplane_pipeline.cpp.o.d"
  "dataplane_pipeline"
  "dataplane_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataplane_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
