# Empty dependencies file for megate_cli.
# This may be replaced when dependencies are built.
