file(REMOVE_RECURSE
  "CMakeFiles/megate_cli.dir/megate_cli.cpp.o"
  "CMakeFiles/megate_cli.dir/megate_cli.cpp.o.d"
  "megate_cli"
  "megate_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megate_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
