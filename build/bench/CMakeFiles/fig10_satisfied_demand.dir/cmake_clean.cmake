file(REMOVE_RECURSE
  "CMakeFiles/fig10_satisfied_demand.dir/fig10_satisfied_demand.cpp.o"
  "CMakeFiles/fig10_satisfied_demand.dir/fig10_satisfied_demand.cpp.o.d"
  "fig10_satisfied_demand"
  "fig10_satisfied_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_satisfied_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
