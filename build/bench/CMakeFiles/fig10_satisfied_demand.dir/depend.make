# Empty dependencies file for fig10_satisfied_demand.
# This may be replaced when dependencies are built.
