# Empty dependencies file for micro_fastssp.
# This may be replaced when dependencies are built.
