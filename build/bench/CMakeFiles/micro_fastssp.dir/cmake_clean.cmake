file(REMOVE_RECURSE
  "CMakeFiles/micro_fastssp.dir/micro_fastssp.cpp.o"
  "CMakeFiles/micro_fastssp.dir/micro_fastssp.cpp.o.d"
  "micro_fastssp"
  "micro_fastssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fastssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
