file(REMOVE_RECURSE
  "CMakeFiles/micro_dataplane.dir/micro_dataplane.cpp.o"
  "CMakeFiles/micro_dataplane.dir/micro_dataplane.cpp.o.d"
  "micro_dataplane"
  "micro_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
