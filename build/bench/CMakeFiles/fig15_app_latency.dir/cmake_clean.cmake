file(REMOVE_RECURSE
  "CMakeFiles/fig15_app_latency.dir/fig15_app_latency.cpp.o"
  "CMakeFiles/fig15_app_latency.dir/fig15_app_latency.cpp.o.d"
  "fig15_app_latency"
  "fig15_app_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_app_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
