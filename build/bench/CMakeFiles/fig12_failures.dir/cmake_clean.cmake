file(REMOVE_RECURSE
  "CMakeFiles/fig12_failures.dir/fig12_failures.cpp.o"
  "CMakeFiles/fig12_failures.dir/fig12_failures.cpp.o.d"
  "fig12_failures"
  "fig12_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
