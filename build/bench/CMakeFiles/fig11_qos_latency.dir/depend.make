# Empty dependencies file for fig11_qos_latency.
# This may be replaced when dependencies are built.
