# Empty dependencies file for fig08_endpoint_cdf.
# This may be replaced when dependencies are built.
