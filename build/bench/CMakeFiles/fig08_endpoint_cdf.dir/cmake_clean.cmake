file(REMOVE_RECURSE
  "CMakeFiles/fig08_endpoint_cdf.dir/fig08_endpoint_cdf.cpp.o"
  "CMakeFiles/fig08_endpoint_cdf.dir/fig08_endpoint_cdf.cpp.o.d"
  "fig08_endpoint_cdf"
  "fig08_endpoint_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_endpoint_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
