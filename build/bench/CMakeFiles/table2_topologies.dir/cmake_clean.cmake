file(REMOVE_RECURSE
  "CMakeFiles/table2_topologies.dir/table2_topologies.cpp.o"
  "CMakeFiles/table2_topologies.dir/table2_topologies.cpp.o.d"
  "table2_topologies"
  "table2_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
