# Empty dependencies file for table2_topologies.
# This may be replaced when dependencies are built.
