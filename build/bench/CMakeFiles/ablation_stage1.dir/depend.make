# Empty dependencies file for ablation_stage1.
# This may be replaced when dependencies are built.
