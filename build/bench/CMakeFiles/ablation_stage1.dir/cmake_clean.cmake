file(REMOVE_RECURSE
  "CMakeFiles/ablation_stage1.dir/ablation_stage1.cpp.o"
  "CMakeFiles/ablation_stage1.dir/ablation_stage1.cpp.o.d"
  "ablation_stage1"
  "ablation_stage1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stage1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
