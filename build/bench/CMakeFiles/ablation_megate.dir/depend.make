# Empty dependencies file for ablation_megate.
# This may be replaced when dependencies are built.
