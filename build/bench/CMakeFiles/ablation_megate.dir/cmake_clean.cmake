file(REMOVE_RECURSE
  "CMakeFiles/ablation_megate.dir/ablation_megate.cpp.o"
  "CMakeFiles/ablation_megate.dir/ablation_megate.cpp.o.d"
  "ablation_megate"
  "ablation_megate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_megate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
