# Empty dependencies file for fig14_sync_scaling.
# This may be replaced when dependencies are built.
