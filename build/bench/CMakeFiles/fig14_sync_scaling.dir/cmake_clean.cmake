file(REMOVE_RECURSE
  "CMakeFiles/fig14_sync_scaling.dir/fig14_sync_scaling.cpp.o"
  "CMakeFiles/fig14_sync_scaling.dir/fig14_sync_scaling.cpp.o.d"
  "fig14_sync_scaling"
  "fig14_sync_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sync_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
