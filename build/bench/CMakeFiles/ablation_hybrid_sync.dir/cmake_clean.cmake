file(REMOVE_RECURSE
  "CMakeFiles/ablation_hybrid_sync.dir/ablation_hybrid_sync.cpp.o"
  "CMakeFiles/ablation_hybrid_sync.dir/ablation_hybrid_sync.cpp.o.d"
  "ablation_hybrid_sync"
  "ablation_hybrid_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
