# Empty dependencies file for ablation_hybrid_sync.
# This may be replaced when dependencies are built.
