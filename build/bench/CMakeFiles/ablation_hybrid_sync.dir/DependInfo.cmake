
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_hybrid_sync.cpp" "bench/CMakeFiles/ablation_hybrid_sync.dir/ablation_hybrid_sync.cpp.o" "gcc" "bench/CMakeFiles/ablation_hybrid_sync.dir/ablation_hybrid_sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/megate_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/megate_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/megate_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/megate_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/ssp/CMakeFiles/megate_ssp.dir/DependInfo.cmake"
  "/root/repo/build/src/te/CMakeFiles/megate_te.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/megate_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/megate_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/megate_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
