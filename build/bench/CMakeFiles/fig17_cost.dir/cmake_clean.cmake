file(REMOVE_RECURSE
  "CMakeFiles/fig17_cost.dir/fig17_cost.cpp.o"
  "CMakeFiles/fig17_cost.dir/fig17_cost.cpp.o.d"
  "fig17_cost"
  "fig17_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
