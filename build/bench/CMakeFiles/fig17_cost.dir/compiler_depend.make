# Empty compiler generated dependencies file for fig17_cost.
# This may be replaced when dependencies are built.
