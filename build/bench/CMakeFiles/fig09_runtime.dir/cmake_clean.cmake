file(REMOVE_RECURSE
  "CMakeFiles/fig09_runtime.dir/fig09_runtime.cpp.o"
  "CMakeFiles/fig09_runtime.dir/fig09_runtime.cpp.o.d"
  "fig09_runtime"
  "fig09_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
