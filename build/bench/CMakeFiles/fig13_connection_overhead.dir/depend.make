# Empty dependencies file for fig13_connection_overhead.
# This may be replaced when dependencies are built.
