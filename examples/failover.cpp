// Failover walkthrough: steady-state TE, then two fiber cuts; MegaTE
// recomputes on the degraded topology and the bottom-up control loop
// (KV store + polling agents) converges every endpoint to the new config
// within one poll interval — the Fig. 12 mechanism end to end.

#include <iostream>

#include "megate/ctrl/agent.h"
#include "megate/ctrl/controller.h"
#include "megate/ctrl/kvstore.h"
#include "megate/sim/failure_sim.h"
#include "megate/te/megate_solver.h"
#include "megate/tm/endpoints.h"
#include "megate/topo/failures.h"
#include "megate/topo/generators.h"
#include "megate/util/stats.h"
#include "megate/util/table.h"

int main() {
  using namespace megate;

  topo::GeneratorOptions gopt;
  gopt.seed = 5;
  topo::Graph wan = topo::make_topology(topo::TopologyKind::kDeltacom, gopt);
  topo::TunnelSet tunnels = topo::build_tunnels(wan);
  auto layout = tm::generate_endpoints_with_total(wan, 1130, 0.8, 6);
  tm::TrafficOptions tmo;
  // ~0.1 of raw capacity: a flow crossing h links consumes h units, so
  // this loads the WAN to a realistic ~half of its routable capacity.
  tmo.target_total_gbps = tm::total_link_capacity_gbps(wan) * 0.1;
  tm::TrafficMatrix traffic = tm::generate_traffic(wan, layout, tmo, 7);

  te::TeProblem problem;
  problem.graph = &wan;
  problem.tunnels = &tunnels;
  problem.traffic = &traffic;
  te::MegaTeSolver solver;

  // --- steady state ------------------------------------------------------
  te::TeSolution before = solver.solve(problem, {}).solution;
  std::cout << "Steady state: "
            << util::Table::num(100 * before.satisfied_ratio(), 1)
            << "% of demand satisfied ("
            << util::Table::num(before.solve_time_s, 2) << " s solve)\n";

  // --- two fiber cuts -----------------------------------------------------
  auto events = topo::inject_link_failures(wan, 2, /*seed=*/99);
  std::cout << "\nInjected " << events.size()
            << " duplex link failures; links up: " << wan.num_links_up()
            << "/" << wan.num_links() << "\n";

  topo::repair_tunnels(wan, tunnels);  // re-run Yen for affected pairs
  te::TeSolution after = solver.solve(problem, {}).solution;
  std::cout << "Recomputed: "
            << util::Table::num(100 * after.satisfied_ratio(), 1)
            << "% satisfied in " << util::Table::num(after.solve_time_s, 2)
            << " s — fast enough to react within the TE interval\n";

  // --- bottom-up convergence ---------------------------------------------
  ctrl::KvStore store(2);
  ctrl::Controller controller(&store);
  controller.publish_solution(problem, after);
  std::cout << "\nPublished " << controller.entries_published()
            << " per-instance route tables at version " << store.version()
            << "\n";

  ctrl::AgentOptions aopt;
  aopt.poll_interval_s = 10.0;
  auto lags = ctrl::measure_sync_lags(store, /*n_agents=*/2000, aopt,
                                      /*publish_at=*/5.0, /*horizon=*/40.0,
                                      /*step=*/0.5);
  std::cout << "2000 agents converged; apply lag after publish: median "
            << util::Table::num(util::percentile(lags, 50), 1) << " s, p95 "
            << util::Table::num(util::percentile(lags, 95), 1)
            << " s, max " << util::Table::num(util::percentile(lags, 100), 1)
            << " s (eventual consistency within one poll interval)\n";

  // --- the windowed cost of slow recomputation ----------------------------
  topo::restore_failures(wan, events);
  sim::FailureScenarioOptions fopt;
  fopt.num_failures = 2;
  auto fast = sim::run_failure_scenario(wan, tunnels, traffic, solver, fopt);
  auto slow = sim::run_failure_scenario(wan, tunnels, traffic, solver, fopt,
                                        /*recompute_override_s=*/100.0);
  std::cout << "\nWindowed satisfied demand over a 300 s TE interval:\n"
            << "  sub-second recompute (MegaTE): "
            << util::Table::num(100 * fast.windowed_satisfied, 1) << "%\n"
            << "  100 s recompute (NCFlow-class): "
            << util::Table::num(100 * slow.windowed_satisfied, 1) << "%\n";
  return 0;
}
