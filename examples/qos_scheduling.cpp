// QoS scheduling walkthrough (§4.1): three traffic classes share one WAN.
// MegaTE allocates class 1 (latency-critical) first on uncontended
// capacity, then class 2, then bulk class 3 on the residual — and every
// flow is pinned to exactly one tunnel. Compare against a QoS-blind run
// and against conventional hash-based TE to see why sequencing matters.

#include <iostream>

#include "megate/sim/flow_sim.h"
#include "megate/te/baselines.h"
#include "megate/te/megate_solver.h"
#include "megate/tm/endpoints.h"
#include "megate/topo/generators.h"
#include "megate/util/table.h"

namespace {

using namespace megate;

struct ClassStats {
  double satisfied[4] = {0, 0, 0, 0};
  double total[4] = {0, 0, 0, 0};
  double latency[4] = {0, 0, 0, 0};
};

ClassStats per_class(const te::TeProblem& problem,
                     const te::TeSolution& sol) {
  ClassStats cs;
  sim::FlowSimResult r = sim::simulate_flows(problem, sol);
  double weight[4] = {0, 0, 0, 0};
  for (const auto& f : r.flows) {
    const int q = static_cast<int>(f.qos);
    cs.total[q] += f.demand_gbps;
    if (f.assigned) {
      cs.satisfied[q] += f.demand_gbps;
      cs.latency[q] += f.demand_gbps * f.latency_ms;
      weight[q] += f.demand_gbps;
    }
  }
  for (int q = 1; q <= 3; ++q) {
    if (weight[q] > 0) cs.latency[q] /= weight[q];
  }
  return cs;
}

}  // namespace

int main() {
  topo::GeneratorOptions gopt;
  gopt.seed = 11;
  topo::Graph wan = topo::make_topology(topo::TopologyKind::kB4, gopt);
  topo::TunnelSet tunnels = topo::build_tunnels(wan);
  auto layout = tm::generate_endpoints_with_total(wan, 3000, 0.8, 12);
  tm::TrafficOptions tmo;
  tmo.flows_per_endpoint = 2.0;
  // Run the WAN hot so the classes actually compete for capacity
  // (mean tunnel length ~2.5 hops makes this ~80%+ of routable capacity).
  tmo.target_total_gbps = tm::total_link_capacity_gbps(wan) * 0.35;
  tm::TrafficMatrix traffic = tm::generate_traffic(wan, layout, tmo, 13);

  te::TeProblem problem;
  problem.graph = &wan;
  problem.tunnels = &tunnels;
  problem.traffic = &traffic;

  // 1. MegaTE with QoS sequencing (the paper's design).
  te::MegaTeSolver megate;
  te::TeSolution seq = megate.solve(problem, {}).solution;

  // 2. Ablation: same solver, one joint QoS-blind pass.
  te::MegaTeOptions flat_opt;
  flat_opt.qos_sequencing = false;
  te::MegaTeSolver flat(flat_opt);
  te::TeSolution joint = flat.solve(problem, {}).solution;

  // 3. Conventional TE: aggregated LP split + five-tuple hashing.
  te::LpAllSolver lp_all;
  te::TeSolution conventional = lp_all.solve(problem);
  te::assign_flows_by_hash(problem, conventional, 99);

  util::Table t("per-class outcome (satisfied % / mean latency ms)");
  t.header({"scheme", "QoS-1", "QoS-2", "QoS-3"});
  auto row = [&](const std::string& name, const te::TeSolution& sol) {
    ClassStats cs = per_class(problem, sol);
    auto cell = [&](int q) {
      const double pct =
          cs.total[q] > 0 ? 100.0 * cs.satisfied[q] / cs.total[q] : 0.0;
      return util::Table::num(pct, 1) + "% / " +
             util::Table::num(cs.latency[q], 1) + "ms";
    };
    t.add_row({name, cell(1), cell(2), cell(3)});
  };
  row("MegaTE (QoS-sequenced)", seq);
  row("MegaTE (QoS-blind ablation)", joint);
  row("Conventional (LP + hash)", conventional);
  t.print(std::cout);

  std::cout << "\nReading the table: sequencing lets class 1 claim capacity "
               "before bulk class 3 arrives (class-1 satisfaction hits "
               "100% while blind allocation lets the bulk flows crowd it "
               "out), and conventional hashing cannot tell classes apart "
               "at all — the paper's core motivation.\n"
               "Note on latency: schemes that reject long-haul flows show "
               "a *lower* mean latency purely by survivorship; compare "
               "within a class at equal satisfaction, or see "
               "bench/fig11_qos_latency for the per-pair comparison.\n";
  return 0;
}
