// Data-plane walkthrough (§5): a container's packets traverse the
// simulated eBPF host stack — execve tracepoint, conntrack kprobe, TC
// egress — get VXLAN-encapsulated with the MegaTE SR header, and are then
// forwarded router by router along the SR hop list. Fragmented datagrams
// are attributed via frag_map, and the endpoint agent's per-instance
// telemetry report closes the loop.

#include <iomanip>
#include <iostream>

#include "megate/dataplane/host_stack.h"
#include "megate/dataplane/router.h"

namespace {

using namespace megate::dataplane;

Buffer build_frame(const FiveTuple& t, std::size_t payload,
                   std::uint16_t ipid, bool more, std::uint16_t offset) {
  Buffer b;
  EthernetHeader eth;
  eth.serialize(b);
  Ipv4Header ip;
  ip.protocol = t.proto;
  ip.src_ip = t.src_ip;
  ip.dst_ip = t.dst_ip;
  ip.identification = ipid;
  ip.more_fragments = more;
  ip.fragment_offset_8b = offset;
  const bool has_l4 = offset == 0;
  ip.total_length = static_cast<std::uint16_t>(
      kIpv4HeaderSize + (has_l4 ? kUdpHeaderSize : 0) + payload);
  ip.serialize(b);
  if (has_l4) {
    UdpHeader udp;
    udp.src_port = t.src_port;
    udp.dst_port = t.dst_port;
    udp.length = static_cast<std::uint16_t>(kUdpHeaderSize + payload);
    udp.serialize(b);
  }
  b.insert(b.end(), payload, 0xEE);
  return b;
}

}  // namespace

int main() {
  // A container (instance 7001) on this host talks to a peer at site 9.
  HostStack host;
  const InstanceId instance = 7001;
  const Pid pid = 31337;

  std::cout << "1. execve tracepoint: pid " << pid << " belongs to instance "
            << instance << " -> env_map\n";
  host.on_sys_enter_execve(pid, instance);

  FiveTuple flow;
  flow.src_ip = make_overlay_ip(/*site=*/2, /*index=*/55);
  flow.dst_ip = make_overlay_ip(/*site=*/9, /*index=*/123);
  flow.proto = kProtoUdp;
  flow.src_port = 40001;
  flow.dst_port = 8080;
  std::cout << "2. conntrack kprobe: five-tuple registered for pid " << pid
            << " -> contk_map, joined into inf_map\n";
  host.on_conntrack_event(flow, pid);

  std::cout << "3. endpoint agent installs the TE route for destination "
               "site 9: hops [4, 7, 9]\n";
  host.install_route(instance, /*dst_site=*/9, {4, 7, 9});

  // --- a normal packet -----------------------------------------------------
  Buffer frame = build_frame(flow, 400, /*ipid=*/100, false, 0);
  TcVerdict v = host.tc_egress(frame, /*underlay_dst_ip=*/0x0A090001);
  std::cout << "4. TC egress: " << frame.size() << "-byte frame -> "
            << v.packet.size() << "-byte VXLAN+SR underlay packet\n";

  // --- a fragmented datagram (the frag_map path of §5.1) -------------------
  host.tc_egress(build_frame(flow, 1480, 101, true, 0), 0x0A090001);
  host.tc_egress(build_frame(flow, 1480, 101, true, 185), 0x0A090001);
  host.tc_egress(build_frame(flow, 520, 101, false, 370), 0x0A090001);
  std::cout << "5. fragmented datagram: 3 fragments attributed via "
               "frag_map (frag_map now holds "
            << host.frag_map_size() << " entries)\n";

  // --- router walk ---------------------------------------------------------
  std::cout << "6. WAN forwarding:\n";
  Buffer pkt = v.packet;
  for (std::uint32_t site : {4u, 7u, 9u}) {
    Router router(site, /*ecmp_group=*/8);
    ForwardDecision d = router.forward(pkt);
    std::cout << "   router site " << std::setw(2) << site << ": ";
    switch (d.kind) {
      case ForwardDecision::Kind::kSegmentRouted:
        std::cout << "SR forward to site " << d.next_hop << "\n";
        break;
      case ForwardDecision::Kind::kDeliverLocal:
        std::cout << "SR list exhausted - deliver to local endpoint\n";
        break;
      case ForwardDecision::Kind::kEcmpHashed:
        std::cout << "(unexpected ECMP fallback)\n";
        break;
      case ForwardDecision::Kind::kDrop:
        std::cout << "(unexpected drop)\n";
        break;
    }
    pkt = d.packet;
  }

  // --- telemetry ------------------------------------------------------------
  auto report = host.collect_flow_report();
  std::cout << "7. endpoint agent telemetry (inf_map JOIN traffic_map):\n";
  for (const auto& r : report) {
    std::cout << "   instance " << r.instance << ": " << r.packets
              << " packets, " << r.bytes << " bytes this TE period\n";
  }
  return report.empty() ? 1 : 0;
}
