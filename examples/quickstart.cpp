// Quickstart: build a WAN, attach endpoints, generate endpoint-granular
// traffic, run the MegaTE two-stage solver and inspect the allocation.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API; see the other examples
// for failover, QoS scheduling and the packet-level data plane.

#include <iostream>

#include "megate/te/checker.h"
#include "megate/te/megate_solver.h"
#include "megate/tm/endpoints.h"
#include "megate/tm/traffic.h"
#include "megate/topo/generators.h"
#include "megate/topo/tunnels.h"
#include "megate/util/table.h"

int main() {
  using namespace megate;

  // 1. A B4-scale WAN: 12 router sites, 19 duplex links, geometric
  //    latencies, deterministic in the seed.
  topo::GeneratorOptions gopt;
  gopt.seed = 1;
  topo::Graph wan = topo::make_topology(topo::TopologyKind::kB4, gopt);
  std::cout << "WAN: " << wan.num_nodes() << " sites, "
            << wan.num_links() / 2 << " duplex links\n";

  // 2. Pre-establish TE tunnels (Yen's 3-shortest paths per site pair).
  topo::TunnelOptions topt;
  topt.tunnels_per_pair = 3;
  topo::TunnelSet tunnels = topo::build_tunnels(wan, topt);
  std::cout << "Tunnels: " << tunnels.total_tunnels() << " across "
            << tunnels.num_pairs() << " site pairs\n";

  // 3. Endpoints per site follow the paper's Weibull fit; traffic is
  //    heavy-tailed with three QoS classes.
  tm::EndpointLayout layout =
      tm::generate_endpoints_with_total(wan, /*target_total=*/2000,
                                        /*shape=*/0.8, /*seed=*/2);
  tm::TrafficOptions tmo;
  tmo.flows_per_endpoint = 1.5;
  tmo.target_total_gbps = tm::total_link_capacity_gbps(wan) * 0.35;
  tm::TrafficMatrix traffic = tm::generate_traffic(wan, layout, tmo, 3);
  std::cout << "Traffic: " << traffic.num_flows() << " endpoint flows, "
            << util::Table::num(traffic.total_demand_gbps(), 1)
            << " Gbps total demand\n\n";

  // 4. Solve with MegaTE: MaxSiteFlow LP, then parallel FastSSP.
  te::TeProblem problem;
  problem.graph = &wan;
  problem.tunnels = &tunnels;
  problem.traffic = &traffic;
  te::MegaTeSolver solver;
  const te::SolveReport report = solver.solve(problem, te::SolveContext{});
  const te::TeSolution& sol = report.solution;

  std::cout << "MegaTE satisfied "
            << util::Table::num(100.0 * sol.satisfied_ratio(), 1)
            << "% of demand in "
            << util::Table::num(sol.solve_time_s * 1e3, 1) << " ms (stage1 "
            << util::Table::num(report.stage1_seconds * 1e3, 1)
            << " ms LP, stage2 "
            << util::Table::num(report.stage2_seconds * 1e3, 1)
            << " ms FastSSP)\n";

  // 5. Validate against the paper's constraints (1a)-(1c).
  te::CheckOptions copt;
  copt.require_flow_assignment = true;
  auto check = te::check_solution(problem, sol, copt);
  std::cout << "Constraint check: " << (check.ok ? "OK" : "VIOLATED")
            << ", max link utilization "
            << util::Table::num(100.0 * check.max_link_utilization, 1)
            << "%\n\n";

  // 6. Peek at one site pair's allocation.
  for (const auto& [pair, alloc] : sol.pairs) {
    const auto& ts = tunnels.tunnels(pair.src, pair.dst);
    if (ts.empty() || alloc.tunnel_alloc.empty()) continue;
    double total = 0;
    for (double f : alloc.tunnel_alloc) total += f;
    if (total <= 0) continue;
    std::cout << "Example pair " << wan.node_name(pair.src) << " -> "
              << wan.node_name(pair.dst) << ":\n";
    for (std::size_t t = 0; t < ts.size(); ++t) {
      std::cout << "  tunnel " << t << " (" << ts[t].hops() << " hops, "
                << util::Table::num(ts[t].latency_ms, 1) << " ms): "
                << util::Table::num(alloc.tunnel_alloc[t], 2) << " Gbps\n";
    }
    break;
  }
  return check.ok ? 0 : 1;
}
